#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace bullion {

namespace {

/// Every file implementation reports op latency into one shared set of
/// registry histograms — the "p50/p99 per pread/flush" substrate the
/// async-I/O work measures itself against. Pointers are fetched once;
/// recording is lock-free.
struct IoLatencyMetrics {
  obs::LatencyHistogram* pread_ns;
  obs::LatencyHistogram* write_ns;
  obs::LatencyHistogram* flush_ns;
};

IoLatencyMetrics& IoMetrics() {
  static IoLatencyMetrics m{
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.pread_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.write_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.flush_ns")};
  return m;
}

/// RAII: records the enclosing scope's duration into `hist`.
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::LatencyHistogram* hist)
      : hist_(hist), start_ns_(obs::NowNs()) {}
  ~ScopedLatency() { hist_->Record(obs::NowNs() - start_ns_); }

 private:
  obs::LatencyHistogram* hist_;
  uint64_t start_ns_;
};

void AccountRead(IoStats* stats, uint64_t offset, size_t len,
                 std::atomic<uint64_t>* last_end) {
  if (stats == nullptr) return;
  stats->read_ops += 1;
  stats->bytes_read += len;
  if (last_end->exchange(offset + len) != offset) stats->seeks += 1;
}

/// A direct write: one logical request that is also one physical
/// syscall (write_ops and write_calls both bump). Aggregated block
/// writes account separately (AccountBlockWrite): the logical ops were
/// already counted when the aggregation buffer absorbed the appends.
void AccountWrite(IoStats* stats, uint64_t offset, size_t len,
                  std::atomic<uint64_t>* last_end) {
  if (stats == nullptr) return;
  stats->write_ops += 1;
  stats->write_calls += 1;
  stats->bytes_written += len;
  if (last_end->exchange(offset + len) != offset) stats->seeks += 1;
}

void AccountBlockWrite(IoStats* stats, uint64_t offset, size_t len,
                       std::atomic<uint64_t>* last_end) {
  if (stats == nullptr) return;
  stats->write_calls += 1;
  stats->bytes_written += len;
  if (last_end->exchange(offset + len) != offset) stats->seeks += 1;
}

}  // namespace

Status InMemoryReadableFile::Read(uint64_t offset, size_t len,
                                  Buffer* out) const {
  ScopedLatency latency(IoMetrics().pread_ns);
  if (offset > file_->data.size()) {
    return Status::OutOfRange("read past end of file");
  }
  size_t avail = file_->data.size() - offset;
  size_t n = std::min(len, avail);
  if (n < len) {
    return Status::OutOfRange("short read: requested " + std::to_string(len) +
                              " at offset " + std::to_string(offset) +
                              ", only " + std::to_string(n) + " available");
  }
  out->Resize(n);
  std::memcpy(out->mutable_data(), file_->data.data() + offset, n);
  AccountRead(stats_, offset, n, &last_end_);
  return Status::OK();
}

Result<uint64_t> InMemoryReadableFile::Size() const {
  return static_cast<uint64_t>(file_->data.size());
}

Status InMemoryWritableFile::AppendImpl(Slice data, bool logical) {
  ScopedLatency latency(IoMetrics().write_ns);
  uint64_t offset = file_->data.size();
  file_->data.insert(file_->data.end(), data.data(), data.data() + data.size());
  if (logical) {
    AccountWrite(stats_, offset, data.size(), &last_end_);
  } else {
    AccountBlockWrite(stats_, offset, data.size(), &last_end_);
  }
  return Status::OK();
}

Status InMemoryWritableFile::Append(Slice data) {
  return AppendImpl(data, /*logical=*/true);
}

Status InMemoryWritableFile::AppendBlock(Slice data) {
  return AppendImpl(data, /*logical=*/false);
}

Status InMemoryWritableFile::WriteAt(uint64_t offset, Slice data) {
  ScopedLatency latency(IoMetrics().write_ns);
  if (offset + data.size() > file_->data.size()) {
    return Status::InvalidArgument(
        "WriteAt would extend file: in-place updates must stay within the "
        "original size");
  }
  std::memcpy(file_->data.data() + offset, data.data(), data.size());
  AccountWrite(stats_, offset, data.size(), &last_end_);
  return Status::OK();
}

Status InMemoryWritableFile::Flush() {
  ScopedLatency latency(IoMetrics().flush_ns);
  if (stats_ != nullptr) stats_->flush_calls += 1;
  return Status::OK();
}

Result<uint64_t> InMemoryWritableFile::Size() const {
  return static_cast<uint64_t>(file_->data.size());
}

Result<std::unique_ptr<WritableFile>> InMemoryFileSystem::NewWritableFile(
    const std::string& name) {
  MutexLock lock(&mu_);
  auto file = std::make_shared<InMemoryFile>();
  files_[name] = file;
  return std::unique_ptr<WritableFile>(
      new InMemoryWritableFile(std::move(file), &stats_));
}

Result<std::unique_ptr<RandomAccessFile>> InMemoryFileSystem::NewReadableFile(
    const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return std::unique_ptr<RandomAccessFile>(new InMemoryReadableFile(
      it->second, const_cast<IoStats*>(&stats_)));
}

Result<std::unique_ptr<WritableFile>> InMemoryFileSystem::OpenForUpdate(
    const std::string& name) {
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return std::unique_ptr<WritableFile>(
      new InMemoryWritableFile(it->second, &stats_));
}

bool InMemoryFileSystem::Exists(const std::string& name) const {
  MutexLock lock(&mu_);
  return files_.count(name) > 0;
}

Result<uint64_t> InMemoryFileSystem::FileSize(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return static_cast<uint64_t>(it->second->data.size());
}

Status InMemoryFileSystem::Delete(const std::string& name) {
  MutexLock lock(&mu_);
  if (files_.erase(name) == 0) return Status::NotFound("no such file: " + name);
  return Status::OK();
}

namespace {

/// Positional reads over a POSIX fd.
class PosixReadableFile : public RandomAccessFile {
 public:
  explicit PosixReadableFile(int fd) : fd_(fd) {}
  ~PosixReadableFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t len, Buffer* out) const override {
    ScopedLatency latency(IoMetrics().pread_ns);
    out->Resize(len);
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::pread(fd_, out->mutable_data() + done, len - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) return Status::OutOfRange("short read at EOF");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(std::string("fstat: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  int RawFd() const override { return fd_; }

 private:
  int fd_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, bool direct) : fd_(fd), direct_(direct) {}
  ~PosixWritableFile() override { ::close(fd_); }

  Status Append(Slice data) override {
    ScopedLatency latency(IoMetrics().write_ns);
    // Small unaligned appends cannot go through O_DIRECT; once one
    // lands, the file offset loses alignment too, so drop to buffered
    // for the remainder of the handle's life.
    BULLION_RETURN_NOT_OK(EnsureBuffered());
    return WriteFully(data);
  }

  Status AppendBlock(Slice data) override {
    ScopedLatency latency(IoMetrics().write_ns);
    if (direct_ && !DirectEligible(data)) {
      BULLION_RETURN_NOT_OK(EnsureBuffered());
    }
    return WriteFully(data);
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    ScopedLatency latency(IoMetrics().write_ns);
    BULLION_ASSIGN_OR_RETURN(uint64_t size, Size());
    if (offset + data.size() > size) {
      return Status::InvalidArgument("WriteAt would extend file");
    }
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override {
    ScopedLatency latency(IoMetrics().flush_ns);
    if (::fsync(fd_) != 0) {
      return Status::IOError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(std::string("fstat: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  int RawFd() const override { return fd_; }

 private:
  /// O_DIRECT demands sector alignment of buffer address, length, and
  /// file offset. Blocks from AggregatedWriteBuffer satisfy all three
  /// until the unpadded tail; anything else falls back to buffered.
  bool DirectEligible(Slice data) const {
    constexpr uint64_t kAlign = 4096;
    if (reinterpret_cast<uintptr_t>(data.data()) % kAlign != 0) return false;
    if (data.size() % kAlign != 0) return false;
    auto size = Size();
    return size.ok() && *size % kAlign == 0;
  }

  Status EnsureBuffered() {
    if (!direct_) return Status::OK();
    int flags = ::fcntl(fd_, F_GETFL);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags & ~O_DIRECT) != 0) {
      return Status::IOError(std::string("fcntl ~O_DIRECT: ") +
                             std::strerror(errno));
    }
    direct_ = false;
    return Status::OK();
  }

  Status WriteFully(Slice data) {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("write: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  int fd_;
  bool direct_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> OpenPosixReadableFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RandomAccessFile>(new PosixReadableFile(fd));
}

Result<std::unique_ptr<WritableFile>> OpenPosixWritableFile(
    const std::string& path, bool truncate) {
  const char* env = std::getenv("BULLION_ODIRECT");
  bool direct = env != nullptr && std::string(env) == "1";
  return OpenPosixWritableFile(path, truncate, direct);
}

Result<std::unique_ptr<WritableFile>> OpenPosixWritableFile(
    const std::string& path, bool truncate, bool direct) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = -1;
  if (direct) {
    fd = ::open(path.c_str(), flags | O_DIRECT, 0644);
    // tmpfs and some overlay filesystems reject O_DIRECT outright;
    // fall back to a buffered handle rather than failing the open.
    if (fd < 0 && (errno == EINVAL || errno == ENOTSUP)) direct = false;
  }
  if (fd < 0) fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (!truncate) {
    if (::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return Status::IOError("lseek " + path + ": " + std::strerror(errno));
    }
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, direct));
}

}  // namespace bullion

#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace bullion {

namespace {

/// Every file implementation reports op latency into one shared set of
/// registry histograms — the "p50/p99 per pread/flush" substrate the
/// async-I/O work measures itself against. Pointers are fetched once;
/// recording is lock-free.
struct IoLatencyMetrics {
  obs::LatencyHistogram* pread_ns;
  obs::LatencyHistogram* write_ns;
  obs::LatencyHistogram* flush_ns;
};

IoLatencyMetrics& IoMetrics() {
  static IoLatencyMetrics m{
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.pread_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.write_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.io.flush_ns")};
  return m;
}

/// RAII: records the enclosing scope's duration into `hist`.
class ScopedLatency {
 public:
  explicit ScopedLatency(obs::LatencyHistogram* hist)
      : hist_(hist), start_ns_(obs::NowNs()) {}
  ~ScopedLatency() { hist_->Record(obs::NowNs() - start_ns_); }

 private:
  obs::LatencyHistogram* hist_;
  uint64_t start_ns_;
};

void AccountRead(IoStats* stats, uint64_t offset, size_t len,
                 std::atomic<uint64_t>* last_end) {
  if (stats == nullptr) return;
  stats->read_ops += 1;
  stats->bytes_read += len;
  if (last_end->exchange(offset + len) != offset) stats->seeks += 1;
}

void AccountWrite(IoStats* stats, uint64_t offset, size_t len,
                  std::atomic<uint64_t>* last_end) {
  if (stats == nullptr) return;
  stats->write_ops += 1;
  stats->bytes_written += len;
  if (last_end->exchange(offset + len) != offset) stats->seeks += 1;
}

}  // namespace

Status InMemoryReadableFile::Read(uint64_t offset, size_t len,
                                  Buffer* out) const {
  ScopedLatency latency(IoMetrics().pread_ns);
  if (offset > file_->data.size()) {
    return Status::OutOfRange("read past end of file");
  }
  size_t avail = file_->data.size() - offset;
  size_t n = std::min(len, avail);
  if (n < len) {
    return Status::OutOfRange("short read: requested " + std::to_string(len) +
                              " at offset " + std::to_string(offset) +
                              ", only " + std::to_string(n) + " available");
  }
  out->Resize(n);
  std::memcpy(out->mutable_data(), file_->data.data() + offset, n);
  AccountRead(stats_, offset, n, &last_end_);
  return Status::OK();
}

Result<uint64_t> InMemoryReadableFile::Size() const {
  return static_cast<uint64_t>(file_->data.size());
}

Status InMemoryWritableFile::Append(Slice data) {
  ScopedLatency latency(IoMetrics().write_ns);
  uint64_t offset = file_->data.size();
  file_->data.insert(file_->data.end(), data.data(), data.data() + data.size());
  AccountWrite(stats_, offset, data.size(), &last_end_);
  return Status::OK();
}

Status InMemoryWritableFile::WriteAt(uint64_t offset, Slice data) {
  ScopedLatency latency(IoMetrics().write_ns);
  if (offset + data.size() > file_->data.size()) {
    return Status::InvalidArgument(
        "WriteAt would extend file: in-place updates must stay within the "
        "original size");
  }
  std::memcpy(file_->data.data() + offset, data.data(), data.size());
  AccountWrite(stats_, offset, data.size(), &last_end_);
  return Status::OK();
}

Status InMemoryWritableFile::Flush() {
  ScopedLatency latency(IoMetrics().flush_ns);
  if (stats_ != nullptr) stats_->flush_calls += 1;
  return Status::OK();
}

Result<uint64_t> InMemoryWritableFile::Size() const {
  return static_cast<uint64_t>(file_->data.size());
}

Result<std::unique_ptr<WritableFile>> InMemoryFileSystem::NewWritableFile(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto file = std::make_shared<InMemoryFile>();
  files_[name] = file;
  return std::unique_ptr<WritableFile>(
      new InMemoryWritableFile(std::move(file), &stats_));
}

Result<std::unique_ptr<RandomAccessFile>> InMemoryFileSystem::NewReadableFile(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return std::unique_ptr<RandomAccessFile>(new InMemoryReadableFile(
      it->second, const_cast<IoStats*>(&stats_)));
}

Result<std::unique_ptr<WritableFile>> InMemoryFileSystem::OpenForUpdate(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return std::unique_ptr<WritableFile>(
      new InMemoryWritableFile(it->second, &stats_));
}

bool InMemoryFileSystem::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

Result<uint64_t> InMemoryFileSystem::FileSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return static_cast<uint64_t>(it->second->data.size());
}

Status InMemoryFileSystem::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(name) == 0) return Status::NotFound("no such file: " + name);
  return Status::OK();
}

namespace {

/// Positional reads over a POSIX fd.
class PosixReadableFile : public RandomAccessFile {
 public:
  explicit PosixReadableFile(int fd) : fd_(fd) {}
  ~PosixReadableFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t len, Buffer* out) const override {
    ScopedLatency latency(IoMetrics().pread_ns);
    out->Resize(len);
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::pread(fd_, out->mutable_data() + done, len - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pread: ") + std::strerror(errno));
      }
      if (n == 0) return Status::OutOfRange("short read at EOF");
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(std::string("fstat: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override { ::close(fd_); }

  Status Append(Slice data) override {
    ScopedLatency latency(IoMetrics().write_ns);
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("write: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    ScopedLatency latency(IoMetrics().write_ns);
    BULLION_ASSIGN_OR_RETURN(uint64_t size, Size());
    if (offset + data.size() > size) {
      return Status::InvalidArgument("WriteAt would extend file");
    }
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override {
    ScopedLatency latency(IoMetrics().flush_ns);
    if (::fsync(fd_) != 0) {
      return Status::IOError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(std::string("fstat: ") + std::strerror(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> OpenPosixReadableFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<RandomAccessFile>(new PosixReadableFile(fd));
}

Result<std::unique_ptr<WritableFile>> OpenPosixWritableFile(
    const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (!truncate) {
    if (::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return Status::IOError("lseek " + path + ": " + std::strerror(errno));
    }
  }
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd));
}

}  // namespace bullion

#include "io/aio.h"

#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "obs/metrics.h"

namespace bullion {

const char* AioTierName(AioTier tier) {
  switch (tier) {
    case AioTier::kSync:
      return "sync";
    case AioTier::kThreads:
      return "threads";
    case AioTier::kUring:
      return "uring";
  }
  return "unknown";
}

AioTier ParseAioTier(const char* value, AioTier fallback) {
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "sync") == 0) return AioTier::kSync;
  if (std::strcmp(value, "threads") == 0) return AioTier::kThreads;
  if (std::strcmp(value, "uring") == 0) return AioTier::kUring;
  return fallback;
}

AioTier DefaultAioTier() {
  // Resolved once: the probe (io_uring_setup + NOP round-trip) is not
  // free, and flipping tiers mid-process would defeat the byte-level
  // reproducibility story the tiers are tested under.
  static AioTier tier = [] {
    AioTier best = internal::CreateUringBackend() != nullptr
                       ? AioTier::kUring
                       : AioTier::kThreads;
    AioTier chosen = ParseAioTier(std::getenv("BULLION_AIO"), best);
    // The override can lower the tier freely but cannot raise it past
    // what the kernel/build supports.
    if (chosen == AioTier::kUring && best != AioTier::kUring) chosen = best;
    return chosen;
  }();
  return tier;
}

namespace {

struct AioMetrics {
  obs::LatencyHistogram* submit_ns;
  obs::LatencyHistogram* inflight_ns;
  obs::LatencyHistogram* complete_ns;
  obs::Gauge* queue_depth;
};

AioMetrics& Metrics() {
  static AioMetrics m{
      obs::MetricsRegistry::Global().GetHistogram("bullion.aio.submit_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.aio.inflight_ns"),
      obs::MetricsRegistry::Global().GetHistogram("bullion.aio.complete_ns"),
      obs::MetricsRegistry::Global().GetGauge("bullion.aio.queue_depth")};
  return m;
}

}  // namespace

/// Shared op accounting + the thread lane. The uring backend hangs off
/// this for fd-backed reads; everything else runs as thread-lane tasks.
class AsyncIoService::Impl {
 public:
  explicit Impl(AioTier tier, int io_threads) : tier_(tier) {
    if (tier_ == AioTier::kUring) {
      uring_ = internal::CreateUringBackend();
      if (uring_ == nullptr) tier_ = AioTier::kThreads;
    }
    if (tier_ != AioTier::kSync) {
      if (io_threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        io_threads = static_cast<int>(hw == 0 ? 4 : std::min(hw, 8u));
      }
      for (int i = 0; i < io_threads; ++i) {
        threads_.emplace_back([this] { RunWorker(); });
      }
    }
  }

  ~Impl() {
    Drain();
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) t.join();
    // uring_ destructor joins its reaper after its own drain.
  }

  AioTier tier() const { return tier_; }

  /// Wraps `done` with in-flight accounting + latency metrics. Called
  /// before the op is handed to any lane.
  std::function<void(Status)> TrackOp(std::function<void(Status)> done) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
    Metrics().queue_depth->Add(1);
    uint64_t t0 = obs::NowNs();
    return [this, t0, done = std::move(done)](Status s) {
      uint64_t landed = obs::NowNs();
      Metrics().inflight_ns->Record(landed - t0);
      done(std::move(s));
      Metrics().complete_ns->Record(obs::NowNs() - landed);
      Metrics().queue_depth->Add(-1);
      MutexLock lock(&drain_mu_);
      if (inflight_.fetch_sub(1, std::memory_order_relaxed) == 1) {
        drain_cv_.NotifyAll();
      }
    };
  }

  void SubmitReadBatch(std::vector<AioRead> batch) {
    uint64_t submit_t0 = obs::NowNs();
    bool staged_uring = false;
    for (auto& r : batch) {
      auto tracked = TrackOp(std::move(r.done));
      if (tier_ == AioTier::kSync) {
        tracked(r.file->Read(r.offset, r.len, r.out));
        continue;
      }
      int fd = r.file->RawFd();
      if (uring_ != nullptr && fd >= 0) {
        // Pre-size the destination; the ring writes straight into it.
        r.out->Resize(r.len);
        uring_->SubmitRead(fd, r.offset, r.len, r.out->mutable_data(),
                           std::move(tracked));
        staged_uring = true;
        continue;
      }
      Enqueue([r = std::move(r), tracked = std::move(tracked)]() mutable {
        tracked(r.file->Read(r.offset, r.len, r.out));
      });
    }
    // The whole plan enters the kernel in one syscall.
    if (staged_uring) uring_->Kick();
    Metrics().submit_ns->Record(obs::NowNs() - submit_t0);
  }

  void SubmitWrite(WritableFile* file, Slice data,
                   std::function<void(Status)> done) {
    uint64_t submit_t0 = obs::NowNs();
    auto tracked = TrackOp(std::move(done));
    if (tier_ == AioTier::kSync) {
      tracked(file->AppendBlock(data));
    } else {
      // The write lane always runs through AppendBlock on an I/O
      // thread, uring tier included: AppendBlock owns the append
      // position and the O_DIRECT fallback state machine, and writes
      // must not race the fd position a ring pwrite would bypass.
      Enqueue([file, data, tracked = std::move(tracked)]() mutable {
        tracked(file->AppendBlock(data));
      });
    }
    Metrics().submit_ns->Record(obs::NowNs() - submit_t0);
  }

  void Drain() {
    MutexLock lock(&drain_mu_);
    while (inflight_.load(std::memory_order_relaxed) != 0) {
      drain_cv_.Wait(drain_mu_);
    }
  }

  int64_t InFlight() const {
    return static_cast<int64_t>(inflight_.load(std::memory_order_relaxed));
  }

 private:
  void Enqueue(std::function<void()> task) {
    {
      MutexLock lock(&mu_);
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

  void RunWorker() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ && drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  AioTier tier_;
  std::unique_ptr<internal::UringBackend> uring_;

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;

  /// Atomic so TrackOp's hot increment skips the lock; drain_mu_ only
  /// serializes the zero-crossing handshake with Drain()'s wait.
  std::atomic<uint64_t> inflight_{0};
  Mutex drain_mu_;
  CondVar drain_cv_;
};

AsyncIoService::AsyncIoService(AioTier tier, int io_threads)
    : impl_(std::make_unique<Impl>(tier, io_threads)) {
  tier_ = impl_->tier();
}

AsyncIoService::~AsyncIoService() = default;

AsyncIoService& AsyncIoService::Default() {
  // Leaked intentionally: scans submitted from arbitrary threads may
  // outlive static destruction order.
  static AsyncIoService* service = new AsyncIoService(DefaultAioTier());  // lint:allow(raw-new)
  return *service;
}

void AsyncIoService::SubmitReadBatch(std::vector<AioRead> batch) {
  impl_->SubmitReadBatch(std::move(batch));
}

void AsyncIoService::SubmitWrite(WritableFile* file, Slice data,
                                 std::function<void(Status)> done) {
  impl_->SubmitWrite(file, data, std::move(done));
}

void AsyncIoService::Drain() { impl_->Drain(); }

int64_t AsyncIoService::InFlight() const { return impl_->InFlight(); }

// ---------------------------------------------------------------------------
// AggregatedWriteBuffer

namespace {
constexpr size_t kBlockAlign = 4096;
}  // namespace

/// One aligned allocation absorbing appends until full.
struct AggregatedWriteBuffer::Block {
  uint8_t* data = nullptr;
  size_t len = 0;
  size_t cap = 0;

  explicit Block(size_t capacity) {
    void* p = nullptr;
    if (posix_memalign(&p, kBlockAlign, capacity) != 0) p = nullptr;
    data = static_cast<uint8_t*>(p);
    cap = p == nullptr ? 0 : capacity;
  }
  ~Block() { std::free(data); }
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;
};

/// Completion state shared with the service's callback thread. The
/// writer thread submits; the callback thread retires blocks and
/// chains the next one, keeping exactly one write outstanding so the
/// base file sees blocks in absorption order.
struct AggregatedWriteBuffer::Shared {
  Mutex mu;
  CondVar cv;
  AsyncIoService* service = nullptr;
  WritableFile* base = nullptr;
  bool in_flight GUARDED_BY(mu) = false;
  std::deque<std::unique_ptr<Block>> pending GUARDED_BY(mu);
  Status error GUARDED_BY(mu) = Status::OK();  // sticky first failure

  /// Dispatches the head pending block unless one is already in
  /// flight. SubmitWrite happens OUTSIDE mu: the sync tier completes
  /// inline, and its completion callback re-acquires mu. Chain depth
  /// is bounded — sync tier never accumulates more than one pending
  /// block, async tiers chain from a fresh callback frame.
  static void Pump(const std::shared_ptr<Shared>& self) {
    Block* blk = nullptr;
    {
      MutexLock lock(&self->mu);
      if (self->in_flight || self->pending.empty() || !self->error.ok()) {
        return;
      }
      self->in_flight = true;
      blk = self->pending.front().get();
    }
    self->service->SubmitWrite(
        self->base, Slice(blk->data, blk->len), [self](Status s) {
          bool chain;
          {
            MutexLock lock(&self->mu);
            self->pending.pop_front();
            if (!s.ok() && self->error.ok()) self->error = std::move(s);
            self->in_flight = false;
            chain = !self->pending.empty() && self->error.ok();
            if (!chain) self->cv.NotifyAll();
          }
          if (chain) Pump(self);
        });
  }
};

AggregatedWriteBuffer::AggregatedWriteBuffer(WritableFile* base,
                                             size_t block_bytes,
                                             AsyncIoService* service)
    : base_(base),
      block_bytes_(std::max(block_bytes, kBlockAlign)),
      service_(service != nullptr ? service : &AsyncIoService::Default()),
      shared_(std::make_shared<Shared>()) {
  shared_->service = service_;
  shared_->base = base_;
  if (auto size = base_->Size(); size.ok()) size0_ = *size;
}

AggregatedWriteBuffer::~AggregatedWriteBuffer() {
  // Callers should Flush() and check; destruction must still not leave
  // callbacks pointing at freed blocks.
  Barrier().IgnoreError();
}

Status AggregatedWriteBuffer::Append(Slice data) {
  {
    MutexLock lock(&shared_->mu);
    BULLION_RETURN_NOT_OK(shared_->error);
  }
  // The logical op is counted at absorption; the physical write_call
  // lands when the containing block does (base AppendBlock).
  if (IoStats* stats = base_->stats(); stats != nullptr) {
    stats->write_ops += 1;
  }
  absorbed_ += data.size();
  size_t off = 0;
  while (off < data.size()) {
    if (cur_ == nullptr) {
      cur_ = std::make_unique<Block>(block_bytes_);
      if (cur_->data == nullptr) {
        cur_.reset();
        return Status::ResourceExhausted("aligned block allocation failed");
      }
    }
    size_t n = std::min(data.size() - off, cur_->cap - cur_->len);
    std::memcpy(cur_->data + cur_->len, data.data() + off, n);
    cur_->len += n;
    off += n;
    if (cur_->len == cur_->cap) SubmitBlock();
  }
  return Status::OK();
}

void AggregatedWriteBuffer::SubmitBlock() {
  {
    MutexLock lock(&shared_->mu);
    shared_->pending.push_back(std::move(cur_));
  }
  Shared::Pump(shared_);
}

Status AggregatedWriteBuffer::Barrier() {
  MutexLock lock(&shared_->mu);
  while (shared_->in_flight ||
         (!shared_->pending.empty() && shared_->error.ok())) {
    shared_->cv.Wait(shared_->mu);
  }
  return shared_->error;
}

Status AggregatedWriteBuffer::Flush() {
  // The unpadded tail rides the same ordered lane as full blocks, so
  // bytes land exactly in absorption order before the base flush.
  if (cur_ != nullptr && cur_->len > 0) SubmitBlock();
  cur_.reset();
  BULLION_RETURN_NOT_OK(Barrier());
  return base_->Flush();
}

Result<uint64_t> AggregatedWriteBuffer::Size() const {
  return size0_ + absorbed_;
}

Status AggregatedWriteBuffer::WriteAt(uint64_t offset, Slice data) {
  if (cur_ != nullptr && cur_->len > 0) SubmitBlock();
  cur_.reset();
  BULLION_RETURN_NOT_OK(Barrier());
  return base_->WriteAt(offset, data);
}

}  // namespace bullion

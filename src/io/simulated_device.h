// SimulatedDevice: converts IoStats into modeled wall-clock time for a
// parameterized storage device (seek latency + sequential bandwidth).
// The paper's I/O arguments (deletion rewrite cost, scattered reads on
// multimodal training) are about bytes moved and seeks incurred; this
// model lets benches report a device-relative "modeled time" that is
// stable across build machines.

#pragma once

#include <cstdint>

#include "io/io_stats.h"

namespace bullion {

/// \brief Cost model for a storage device.
struct DeviceModel {
  /// Fixed cost per non-contiguous operation (microseconds).
  double seek_us = 100.0;
  /// Sequential throughput (bytes per microsecond == MB/s / ~1).
  double bandwidth_bytes_per_us = 500.0;  // ~500 MB/s (SATA SSD class)
  /// Fixed per-operation software overhead (microseconds).
  double per_op_us = 5.0;

  /// A cloud-object-store-like profile: expensive seeks, high bandwidth.
  static DeviceModel ObjectStore() {
    return DeviceModel{8000.0, 2000.0, 50.0};
  }
  /// NVMe-like profile: cheap seeks, very high bandwidth.
  static DeviceModel Nvme() { return DeviceModel{10.0, 3000.0, 2.0}; }
  /// HDD-like profile: very expensive seeks, moderate bandwidth.
  static DeviceModel Hdd() { return DeviceModel{8000.0, 150.0, 5.0}; }
};

/// Modeled time in microseconds to execute the I/O recorded in `stats`
/// on a device described by `model`.
///
/// Per-operation cost is charged per SYSCALL, not per logical request:
/// the write side uses write_calls (physical writes the device saw),
/// falling back to write_ops for stats recorded before the counter
/// split so hand-built IoStats in older tests/benches keep modeling.
/// Charging per logical append would bill an aggregated commit (many
/// page appends, one block write) as if every page were its own
/// syscall — erasing exactly the batching win the model exists to
/// show.
inline double ModeledTimeUs(const IoStats& stats, const DeviceModel& model) {
  double total_bytes =
      static_cast<double>(stats.bytes_read + stats.bytes_written);
  uint64_t write_calls = stats.write_calls.load(std::memory_order_relaxed);
  if (write_calls == 0) {
    write_calls = stats.write_ops.load(std::memory_order_relaxed);
  }
  double total_ops = static_cast<double>(stats.read_ops + write_calls);
  return static_cast<double>(stats.seeks) * model.seek_us +
         total_bytes / model.bandwidth_bytes_per_us +
         total_ops * model.per_op_us;
}

/// Snapshot overload: model a phase delta (IoStatsDelta) without
/// holding live atomics. Same per-syscall charging as above.
inline double ModeledTimeUs(const IoStatsSnapshot& stats,
                            const DeviceModel& model) {
  double total_bytes =
      static_cast<double>(stats.bytes_read + stats.bytes_written);
  uint64_t write_calls =
      stats.write_calls != 0 ? stats.write_calls : stats.write_ops;
  double total_ops = static_cast<double>(stats.read_ops + write_calls);
  return static_cast<double>(stats.seeks) * model.seek_us +
         total_bytes / model.bandwidth_bytes_per_us +
         total_ops * model.per_op_us;
}

}  // namespace bullion

// io_uring backend for AsyncIoService, written against the raw kernel
// ABI (io_uring_setup/io_uring_enter + mmap'd rings) so no liburing
// dependency is needed. Compiled only when CMake's feature probe finds
// <linux/io_uring.h> (BULLION_WITH_URING); the #else branch keeps the
// translation unit valid elsewhere with a nullptr factory, which
// AsyncIoService treats as "degrade to the thread tier".
//
// Threading model:
//   * Submitters (any thread) hold mu_ while writing SQEs; the SQ tail
//     is published to the kernel with a release store. Each
//     SubmitRead only stages; the service calls Kick() once per
//     coalesced plan, so one io_uring_enter covers the whole batch.
//   * One reaper thread blocks in io_uring_enter(GETEVENTS), drains
//     CQEs (acquire-load of the CQ tail the kernel advances), and runs
//     completion callbacks OUTSIDE mu_ — callbacks may block on
//     downstream backpressure (decode task windows) without stalling
//     submission.
//   * Short reads resubmit the remainder from the reaper; EOF maps to
//     OutOfRange like RandomAccessFile::Read, other negative results
//     to IOError(strerror(-res)).
//   * In-flight ops are capped at the CQ capacity; excess ops wait in
//     an overflow queue and enter the ring as completions free slots,
//     so the CQ can never drop a completion.
//
// The factory performs the runtime probe: ring setup plus a NOP
// round-trip. Containers that allow the syscalls to exist but block
// them (seccomp) fail here and fall back cleanly.

#include "io/aio.h"

#ifdef BULLION_WITH_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace bullion {
namespace internal {

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// One in-flight read; user_data carries the pointer. Mutated only by
/// the reaper (short-read resubmission) once submitted.
struct UringOp {
  int fd = 0;
  uint64_t offset = 0;
  size_t remaining = 0;
  uint8_t* dst = nullptr;
  std::function<void(Status)> done;
};

/// user_data distinguishing the shutdown/probe NOP from real ops.
constexpr uint64_t kNopUserData = 0;

class RawUringBackend : public UringBackend {
 public:
  ~RawUringBackend() override {
    if (reaper_.joinable()) {
      Drain();
      {
        MutexLock lock(&mu_);
        stop_ = true;
        StageNopLocked();
        KickLocked();
      }
      reaper_.join();
    }
    if (sqes_ != nullptr) {
      ::munmap(sqes_, params_.sq_entries * sizeof(io_uring_sqe));
    }
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_len_);
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_len_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  /// Sets up the ring and proves it works with a NOP round-trip.
  /// Returns false (leaving the object safe to destroy) on any
  /// failure — caller then falls back to the thread tier.
  bool Init(unsigned entries) {
    std::memset(&params_, 0, sizeof(params_));
    ring_fd_ = SysUringSetup(entries, &params_);
    if (ring_fd_ < 0) return false;

    size_t sq_len = params_.sq_off.array + params_.sq_entries * sizeof(uint32_t);
    size_t cq_len =
        params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    bool single_mmap = (params_.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_len = cq_len = std::max(sq_len, cq_len);

    sq_ptr_ = ::mmap(nullptr, sq_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return false;
    }
    sq_len_ = sq_len;
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = ::mmap(nullptr, cq_len, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return false;
      }
      cq_len_ = cq_len;
    }
    void* sqes = ::mmap(nullptr, params_.sq_entries * sizeof(io_uring_sqe),
                        PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                        ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return false;
    sqes_ = static_cast<io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(sq_ptr_);
    sq_head_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<uint32_t*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params_.sq_off.array);
    char* cq = static_cast<char*>(cq_ptr_);
    cq_head_ = reinterpret_cast<uint32_t*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<uint32_t*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);

    if (!NopRoundTrip()) return false;
    reaper_ = std::thread([this] { Reap(); });
    return true;
  }

  void SubmitRead(int fd, uint64_t offset, size_t len, uint8_t* dst,
                  std::function<void(Status)> done) override {
    // Raw new: ownership rides the ring as user_data; the reaper (or
    // FailAll) deletes after running `done`.
    auto* op = new UringOp{fd, offset, len, dst,  // lint:allow(raw-new)
                           std::move(done)};
    MutexLock lock(&mu_);
    ++inflight_;
    if (ring_ops_ >= params_.cq_entries || !StageOpLocked(op)) {
      overflow_.push_back(op);
    }
  }

  void Kick() override {
    MutexLock lock(&mu_);
    KickLocked();
  }

  void Drain() override {
    MutexLock lock(&mu_);
    while (inflight_ != 0) drain_cv_.Wait(mu_);
  }

 private:
  /// Writes one SQE for `op`; false when the SQ ring itself is full
  /// (caller queues to overflow_).
  bool StageOpLocked(UringOp* op) REQUIRES(mu_) {
    io_uring_sqe* sqe = NextSqeLocked(reinterpret_cast<uint64_t>(op));
    if (sqe == nullptr) return false;
    sqe->opcode = IORING_OP_READ;
    sqe->fd = op->fd;
    sqe->addr = reinterpret_cast<uint64_t>(op->dst);
    sqe->len = static_cast<uint32_t>(op->remaining);
    sqe->off = op->offset;
    ++ring_ops_;
    return true;
  }

  void StageNopLocked() REQUIRES(mu_) {
    io_uring_sqe* sqe = NextSqeLocked(kNopUserData);
    if (sqe != nullptr) sqe->opcode = IORING_OP_NOP;
  }

  /// Claims the next SQ slot (zeroed, user_data set) and publishes the
  /// new tail; nullptr when the ring is full.
  io_uring_sqe* NextSqeLocked(uint64_t user_data) REQUIRES(mu_) {
    uint32_t tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= params_.sq_entries) return nullptr;
    uint32_t idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->user_data = user_data;
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    ++staged_;
    return sqe;
  }

  /// Tells the kernel about every staged SQE.
  void KickLocked() REQUIRES(mu_) {
    while (staged_ > 0) {
      int ret = SysUringEnter(ring_fd_, staged_, 0, 0);
      if (ret < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
        break;  // ring is wedged; ops will surface as reaper errors
      }
      staged_ -= static_cast<unsigned>(ret);
    }
  }

  /// Reaper bootstrap, called from Init before the reaper thread
  /// exists: the CQ fields it polls inline are otherwise only touched
  /// by the reaper, a single-threaded-by-construction access pattern
  /// the analysis cannot see — the one sanctioned escape in the tree.
  bool NopRoundTrip() NO_THREAD_SAFETY_ANALYSIS {
    {
      MutexLock lock(&mu_);
      StageNopLocked();
      if (staged_ == 0) return false;
      KickLocked();
      if (staged_ != 0) return false;
    }
    int ret = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (ret < 0) return false;
    uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (head == tail) return false;
    bool ok = cqes_[head & cq_mask_].user_data == kNopUserData;
    __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
    return ok;
  }

  void Reap() {
    std::vector<std::pair<UringOp*, Status>> landed;
    for (;;) {
      int ret = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret < 0 && errno != EINTR) {
        // Ring wedged (should not happen post-probe): fail every
        // outstanding op rather than hang the drain.
        FailAll(Status::IOError(std::string("io_uring_enter: ") +
                                std::strerror(errno)));
        return;
      }
      bool saw_stop_nop = false;
      {
        MutexLock lock(&mu_);
        for (;;) {
          uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
          uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
          if (head == tail) break;
          io_uring_cqe cqe = cqes_[head & cq_mask_];
          __atomic_store_n(cq_head_, head + 1, __ATOMIC_RELEASE);
          if (cqe.user_data == kNopUserData) {
            if (stop_) saw_stop_nop = true;
            continue;
          }
          auto* op = reinterpret_cast<UringOp*>(cqe.user_data);
          if (cqe.res < 0) {
            --ring_ops_;
            landed.emplace_back(
                op, Status::IOError(std::string("io_uring read: ") +
                                    std::strerror(-cqe.res)));
          } else if (cqe.res == 0) {
            --ring_ops_;
            landed.emplace_back(op, Status::OutOfRange("short read at EOF"));
          } else if (static_cast<size_t>(cqe.res) < op->remaining) {
            // Short read mid-file: resubmit the remainder in place.
            op->offset += static_cast<uint64_t>(cqe.res);
            op->dst += cqe.res;
            op->remaining -= static_cast<size_t>(cqe.res);
            --ring_ops_;
            if (!StageOpLocked(op)) overflow_.push_front(op);
          } else {
            --ring_ops_;
            landed.emplace_back(op, Status::OK());
          }
        }
        // Freed CQ slots admit overflow ops.
        while (!overflow_.empty() && ring_ops_ < params_.cq_entries &&
               StageOpLocked(overflow_.front())) {
          overflow_.pop_front();
        }
        KickLocked();
      }
      // Callbacks outside the ring lock: they may block on downstream
      // backpressure without stalling submission or CQE draining of
      // the next iteration.
      for (auto& [op, status] : landed) {
        op->done(std::move(status));
        delete op;
      }
      if (!landed.empty()) {
        MutexLock lock(&mu_);
        inflight_ -= static_cast<unsigned>(landed.size());
        if (inflight_ == 0) drain_cv_.NotifyAll();
      }
      landed.clear();
      if (saw_stop_nop) {
        // The shutdown NOP is staged only after Drain() saw
        // inflight_ == 0, so nothing can still be outstanding.
        return;
      }
    }
  }

  /// Unreachable-in-practice escape hatch (enter failing post-probe):
  /// fails queued ops so waiters see the error. Ops already inside the
  /// ring cannot be completed safely (the kernel may still write their
  /// buffers) and are intentionally left counted in inflight_.
  void FailAll(const Status& error) {
    std::deque<UringOp*> orphans;
    {
      MutexLock lock(&mu_);
      orphans.swap(overflow_);
    }
    for (UringOp* op : orphans) {
      op->done(error);
      delete op;
    }
    MutexLock lock(&mu_);
    inflight_ -= static_cast<unsigned>(orphans.size());
    if (inflight_ == 0) drain_cv_.NotifyAll();
  }

  io_uring_params params_{};
  int ring_fd_ = -1;
  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  size_t sq_len_ = 0;
  size_t cq_len_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  Mutex mu_;
  CondVar drain_cv_;
  std::deque<UringOp*> overflow_ GUARDED_BY(mu_);  // waiting for a CQ slot
  unsigned staged_ GUARDED_BY(mu_) = 0;    // SQEs written, not yet entered
  unsigned ring_ops_ GUARDED_BY(mu_) = 0;  // ops inside the ring
  unsigned inflight_ GUARDED_BY(mu_) = 0;  // submitted, done not returned
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread reaper_;
};

}  // namespace

std::unique_ptr<UringBackend> CreateUringBackend() {
  auto backend = std::make_unique<RawUringBackend>();
  if (!backend->Init(256)) return nullptr;
  return backend;
}

}  // namespace internal
}  // namespace bullion

#else  // !BULLION_WITH_URING

namespace bullion {
namespace internal {

std::unique_ptr<UringBackend> CreateUringBackend() { return nullptr; }

}  // namespace internal
}  // namespace bullion

#endif  // BULLION_WITH_URING

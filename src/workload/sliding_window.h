// Sliding-window sequence generator shared by tests and benches
// (clk_seq_cids pattern, paper §2.2 / Fig. 3).

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace bullion {
namespace workload {

struct SlidingWindowOptions {
  size_t users = 50;
  size_t events_per_user = 40;
  size_t window = 256;
  /// Probability the window shifts (head insert + tail drop) between
  /// consecutive events of the same user. 0 = identical vectors,
  /// 1 = shift every event, lower = higher overlap.
  double shift_prob = 0.25;
  uint64_t id_universe = 1u << 20;
  uint64_t seed = 42;
};

/// Emits offsets (rows+1) and flattened values of a list<int64> column
/// sorted by (user, time), the layout §2.2 assumes.
void MakeSlidingWindowColumn(const SlidingWindowOptions& options,
                             std::vector<int64_t>* offsets,
                             std::vector<int64_t>* values);

}  // namespace workload
}  // namespace bullion

// Zipf-distributed id generator (rejection-inversion method of
// Hörmann & Derflinger), used for skewed sparse-feature ids.

#pragma once

#include <cmath>
#include <cstdint>

#include "common/random.h"

namespace bullion {

/// \brief Samples ids in [0, n) with P(k) proportional to 1/(k+1)^s.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s, uint64_t seed)
      : n_(n), s_(s), rng_(seed) {
    // Normalization via the generalized harmonic number (computed once;
    // sampling uses inverse-CDF on a precomputed approximation).
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
  }

  uint64_t Next() {
    // Rejection-inversion sampling.
    while (true) {
      double u = h_x1_ + rng_.NextDouble() * (h_n_ - h_x1_);
      double x = HInverse(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      double ratio = std::pow(static_cast<double>(k), -s_);
      double accept = ratio / std::pow(x, -s_);
      if (rng_.NextDouble() < accept) return k - 1;
    }
  }

 private:
  double H(double x) const {
    if (s_ == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double HInverse(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  uint64_t n_;
  double s_;
  Random rng_;
  double h_x1_;
  double h_n_;
};

}  // namespace bullion

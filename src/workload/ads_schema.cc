#include "workload/ads_schema.h"

#include <algorithm>
#include <cmath>

#include "workload/zipf.h"

namespace bullion {
namespace workload {

const std::vector<Table1Entry>& Table1Breakdown() {
  static const std::vector<Table1Entry> kTable1 = {
      {"list<int64>", 16256},
      {"list<float>", 812},
      {"list<list<int64>>", 277},
      {"struct<list<int64>,list<float>>", 143},
      {"struct<list<int64>>", 120},
      {"struct<list<binary>>", 46},
      {"struct<list<float>>", 29},
      {"struct<list<binary>,list<binary>>", 18},
      {"struct<list<double>>", 10},
      {"list<binary>", 8},
      {"struct<list<list<int64>>>", 5},
      {"struct<list<binary>,list<float>>", 5},
      {"string", 3},
      {"int64", 1},
  };
  return kTable1;
}

const std::vector<std::pair<std::string, double>>& Figure1TableSizesPb() {
  // Approximate bar heights of Figure 1 (top-10 ad tables, CN region).
  static const std::vector<std::pair<std::string, double>> kFig1 = {
      {"A", 100.0}, {"B", 88.0}, {"C", 78.0}, {"D", 70.0}, {"E", 62.0},
      {"F", 54.0},  {"G", 47.0}, {"H", 40.0}, {"I", 33.0}, {"J", 27.0},
  };
  return kFig1;
}

uint32_t Table1TotalColumns() {
  uint32_t total = 0;
  for (const Table1Entry& e : Table1Breakdown()) total += e.column_count;
  return total;
}

namespace {

DataType TypeFromName(const std::string& name) {
  auto p = [](PhysicalType t) { return DataType::Primitive(t); };
  if (name == "list<int64>") return DataType::List(p(PhysicalType::kInt64));
  if (name == "list<float>") return DataType::List(p(PhysicalType::kFloat32));
  if (name == "list<list<int64>>") {
    return DataType::List(DataType::List(p(PhysicalType::kInt64)));
  }
  if (name == "struct<list<int64>,list<float>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kInt64)),
                             DataType::List(p(PhysicalType::kFloat32))});
  }
  if (name == "struct<list<int64>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kInt64))});
  }
  if (name == "struct<list<binary>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kBinary))});
  }
  if (name == "struct<list<float>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kFloat32))});
  }
  if (name == "struct<list<binary>,list<binary>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kBinary)),
                             DataType::List(p(PhysicalType::kBinary))});
  }
  if (name == "struct<list<double>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kFloat64))});
  }
  if (name == "list<binary>") return DataType::List(p(PhysicalType::kBinary));
  if (name == "struct<list<list<int64>>>") {
    return DataType::Struct(
        {DataType::List(DataType::List(p(PhysicalType::kInt64)))});
  }
  if (name == "struct<list<binary>,list<float>>") {
    return DataType::Struct({DataType::List(p(PhysicalType::kBinary)),
                             DataType::List(p(PhysicalType::kFloat32))});
  }
  if (name == "string") return p(PhysicalType::kBinary);
  return p(PhysicalType::kInt64);  // "int64"
}

std::string SanitizeTypeName(std::string name) {
  for (char& c : name) {
    if (c == '<' || c == '>' || c == ',') c = '_';
  }
  return name;
}

}  // namespace

Schema BuildAdsSchema(double scale) {
  std::vector<Field> fields;
  for (const Table1Entry& e : Table1Breakdown()) {
    uint32_t count = std::max<uint32_t>(
        1, static_cast<uint32_t>(std::llround(e.column_count * scale)));
    for (uint32_t i = 0; i < count; ++i) {
      Field f;
      f.name = SanitizeTypeName(e.type_name) + "_" + std::to_string(i);
      f.type = TypeFromName(e.type_name);
      // list<int64> sparse features get the sliding-window treatment.
      f.logical = (e.type_name == "list<int64>") ? LogicalType::kIdSequence
                                                 : LogicalType::kPlain;
      fields.push_back(std::move(f));
    }
  }
  return Schema(std::move(fields));
}

std::vector<ColumnVector> GenerateAdsData(const Schema& schema, size_t rows,
                                          uint64_t seed,
                                          const AdsDataOptions& options) {
  std::vector<ColumnVector> cols;
  cols.reserve(schema.num_leaves());
  uint64_t col_seed = seed;
  for (const LeafColumn& leaf : schema.leaves()) {
    ++col_seed;
    Random rng(col_seed * 0x9E3779B97F4A7C15ull + seed);
    ZipfGenerator zipf(options.id_universe, options.zipf_s, col_seed);
    ColumnVector col = ColumnVector::ForLeaf(leaf);
    if (leaf.list_depth == 1 && DomainOf(leaf.physical) == ValueDomain::kInt &&
        leaf.logical == LogicalType::kIdSequence) {
      // Sliding-window id sequence (clk_seq_cids pattern, Fig. 3).
      std::vector<int64_t> window(options.seq_length);
      for (auto& x : window) x = static_cast<int64_t>(zipf.Next());
      for (size_t r = 0; r < rows; ++r) {
        if (r > 0 && rng.Bernoulli(options.window_shift_prob)) {
          window.insert(window.begin(), static_cast<int64_t>(zipf.Next()));
          window.pop_back();
        }
        col.AppendIntList(window);
      }
    } else if (leaf.list_depth == 0 &&
               DomainOf(leaf.physical) == ValueDomain::kInt) {
      for (size_t r = 0; r < rows; ++r) {
        col.AppendInt(static_cast<int64_t>(zipf.Next()));
      }
    } else if (leaf.list_depth == 0 &&
               DomainOf(leaf.physical) == ValueDomain::kBinary) {
      for (size_t r = 0; r < rows; ++r) {
        col.AppendBinary("v" + std::to_string(zipf.Next()));
      }
    } else if (leaf.list_depth == 1 &&
               DomainOf(leaf.physical) == ValueDomain::kInt) {
      // Non-sequence int lists: short skewed id lists.
      for (size_t r = 0; r < rows; ++r) {
        std::vector<int64_t> v(1 + rng.Uniform(8));
        for (auto& x : v) x = static_cast<int64_t>(zipf.Next());
        col.AppendIntList(v);
      }
    } else if (leaf.list_depth == 1 &&
               DomainOf(leaf.physical) == ValueDomain::kReal) {
      // Embeddings normalized to (-1, 1) (§2.4).
      size_t dim = 8;
      for (size_t r = 0; r < rows; ++r) {
        std::vector<double> v(dim);
        for (auto& x : v) x = std::tanh(rng.NextGaussian() * 0.5);
        col.AppendRealList(v);
      }
    } else if (leaf.list_depth == 1 &&
               DomainOf(leaf.physical) == ValueDomain::kBinary) {
      for (size_t r = 0; r < rows; ++r) {
        std::vector<std::string> v(1 + rng.Uniform(3));
        for (auto& s : v) s = "kw" + std::to_string(zipf.Next());
        col.AppendBinaryList(v);
      }
    } else if (leaf.list_depth == 2) {
      for (size_t r = 0; r < rows; ++r) {
        std::vector<std::vector<int64_t>> row(rng.Uniform(3));
        for (auto& inner : row) {
          inner.resize(1 + rng.Uniform(4));
          for (auto& x : inner) x = static_cast<int64_t>(zipf.Next());
        }
        col.AppendIntListList(row);
      }
    } else {
      for (size_t r = 0; r < rows; ++r) col.AppendReal(rng.NextDouble());
    }
    cols.push_back(std::move(col));
  }
  return cols;
}

double EstimateBytesPerRow(const AdsDataOptions& options) {
  double bytes = 0;
  for (const Table1Entry& e : Table1Breakdown()) {
    double per_col;
    if (e.type_name == "list<int64>") {
      per_col = options.seq_length * 8.0;
    } else if (e.type_name.find("float") != std::string::npos) {
      per_col = 8 * 4.0;
    } else if (e.type_name.find("binary") != std::string::npos ||
               e.type_name == "string") {
      per_col = 24.0;
    } else if (e.type_name.find("list<list") != std::string::npos) {
      per_col = 6 * 8.0;
    } else {
      per_col = 8.0;
    }
    bytes += per_col * e.column_count;
  }
  return bytes;
}

}  // namespace workload
}  // namespace bullion

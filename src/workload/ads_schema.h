// Synthetic ads-table workload reproducing the paper's Table 1 column
// type breakdown and Figure 1 table sizes (DESIGN.md substitution: the
// real ByteDance ads tables are proprietary; the generator reproduces
// the schema *shape* — type mix, widths, list lengths — which is what
// the storage experiments depend on).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "format/column_vector.h"
#include "format/schema.h"

namespace bullion {
namespace workload {

/// One row of the paper's Table 1.
struct Table1Entry {
  std::string type_name;
  uint32_t column_count;
};

/// The exact Table 1 histogram (16,256 list<int64>, 812 list<float>,
/// ...).
const std::vector<Table1Entry>& Table1Breakdown();

/// Figure 1: top-10 ad table sizes in PB (approximate series read off
/// the figure, A..J descending).
const std::vector<std::pair<std::string, double>>& Figure1TableSizesPb();

/// Builds an ads schema whose type mix matches Table 1 scaled by
/// `scale` (scale = 1.0 reproduces all ~17.7k columns; benches use
/// smaller scales). Column counts are rounded up so every type keeps
/// at least one column.
Schema BuildAdsSchema(double scale);

/// Total column count of Table 1 at scale 1.0.
uint32_t Table1TotalColumns();

struct AdsDataOptions {
  /// Sequence length for list<int64> sparse features (clk_seq_cids is
  /// 256 in the paper; benches often use smaller).
  uint32_t seq_length = 32;
  /// Probability the sliding window shifts between consecutive rows.
  double window_shift_prob = 0.25;
  /// Id universe for sparse features.
  uint64_t id_universe = 1u << 20;
  /// Zipf skew of ids.
  double zipf_s = 1.1;
};

/// Generates `rows` rows of data for every leaf of `schema`, shaped by
/// each column's logical/physical kind: sliding-window id sequences for
/// list<int64>, embeddings in (-1,1) for float lists, etc.
std::vector<ColumnVector> GenerateAdsData(const Schema& schema, size_t rows,
                                          uint64_t seed,
                                          const AdsDataOptions& options = {});

/// Estimated bytes per row of the full-scale ads schema (for the Fig. 1
/// PB-scale extrapolation printout).
double EstimateBytesPerRow(const AdsDataOptions& options);

}  // namespace workload
}  // namespace bullion

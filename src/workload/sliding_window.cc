#include "workload/sliding_window.h"

namespace bullion {
namespace workload {

void MakeSlidingWindowColumn(const SlidingWindowOptions& options,
                             std::vector<int64_t>* offsets,
                             std::vector<int64_t>* values) {
  Random rng(options.seed);
  offsets->clear();
  values->clear();
  offsets->push_back(0);
  for (size_t u = 0; u < options.users; ++u) {
    std::vector<int64_t> window(options.window);
    for (auto& x : window) {
      x = static_cast<int64_t>(rng.Uniform(options.id_universe));
    }
    for (size_t e = 0; e < options.events_per_user; ++e) {
      if (e > 0 && rng.Bernoulli(options.shift_prob)) {
        window.insert(window.begin(),
                      static_cast<int64_t>(rng.Uniform(options.id_universe)));
        window.pop_back();
      }
      values->insert(values->end(), window.begin(), window.end());
      offsets->push_back(static_cast<int64_t>(values->size()));
    }
  }
}

}  // namespace workload
}  // namespace bullion

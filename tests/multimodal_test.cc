// Multimodal storage tests (§2.5, Fig. 7): avro-like container, dual
// table dataset, quality-aware layout.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "io/file.h"
#include "multimodal/avro.h"
#include "multimodal/dataset.h"

namespace bullion {
namespace multimodal {
namespace {

avro::AvroSchema MediaSchema() {
  avro::AvroSchema s;
  s.fields.push_back({"id", avro::Type::kLong});
  s.fields.push_back({"score", avro::Type::kDouble});
  s.fields.push_back({"blob", avro::Type::kBytes});
  return s;
}

TEST(Avro, SequentialRoundTrip) {
  InMemoryFileSystem fs;
  std::vector<avro::Record> records;
  {
    auto f = fs.NewWritableFile("m");
    avro::AvroWriter writer(MediaSchema(), f->get());
    Random rng(1);
    for (int i = 0; i < 500; ++i) {
      avro::Record rec;
      rec.push_back(static_cast<int64_t>(i));
      rec.push_back(rng.NextDouble());
      std::string blob(rng.Uniform(300), 'x');
      rec.push_back(blob);
      records.push_back(rec);
      ASSERT_TRUE(writer.Append(rec).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = *avro::AvroReader::Open(*fs.NewReadableFile("m"));
  std::vector<avro::Record> out;
  ASSERT_TRUE(reader->ReadAll(&out).ok());
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(std::get<int64_t>(out[i][0]), std::get<int64_t>(records[i][0]));
    EXPECT_EQ(std::get<double>(out[i][1]), std::get<double>(records[i][1]));
    EXPECT_EQ(std::get<std::string>(out[i][2]),
              std::get<std::string>(records[i][2]));
  }
}

TEST(Avro, RandomAccessByLocator) {
  InMemoryFileSystem fs;
  std::vector<avro::RecordLocator> locators;
  {
    auto f = fs.NewWritableFile("m");
    avro::AvroWriterOptions opts;
    opts.block_bytes = 1024;  // force multiple blocks
    avro::AvroWriter writer(MediaSchema(), f->get(), opts);
    for (int i = 0; i < 200; ++i) {
      avro::Record rec;
      rec.push_back(static_cast<int64_t>(i * 7));
      rec.push_back(0.5);
      rec.push_back(std::string(100, static_cast<char>('a' + i % 26)));
      auto loc = writer.Append(rec);
      ASSERT_TRUE(loc.ok());
      locators.push_back(*loc);
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = *avro::AvroReader::Open(*fs.NewReadableFile("m"));
  for (int i : {0, 50, 117, 199}) {
    auto rec = reader->ReadRecord(locators[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(std::get<int64_t>((*rec)[0]), i * 7);
    EXPECT_EQ(std::get<std::string>((*rec)[2])[0],
              static_cast<char>('a' + i % 26));
  }
}

TEST(Avro, TypeMismatchRejected) {
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("m");
  avro::AvroWriter writer(MediaSchema(), f->get());
  avro::Record bad;
  bad.push_back(std::string("not a long"));
  bad.push_back(0.5);
  bad.push_back(std::string("x"));
  EXPECT_FALSE(writer.Append(bad).ok());
}

std::string RandomBlob(Random* rng, size_t len) {
  std::string s(len, 0);
  for (auto& ch : s) ch = static_cast<char>(rng->Uniform(256));
  return s;
}

std::vector<Sample> MakeSamples(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<Sample> samples(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i].sample_id = static_cast<int64_t>(i);
    samples[i].quality = rng.NextDouble();
    // Incompressible payloads so layout effects, not compressibility,
    // drive the I/O comparisons (real frames/captions are media-like).
    samples[i].caption = RandomBlob(&rng, 40);
    size_t frames = 1 + rng.Uniform(3);
    for (size_t k = 0; k < frames; ++k) {
      samples[i].frame_highlights.push_back(RandomBlob(&rng, 64));
    }
    samples[i].media_blob = RandomBlob(&rng, 500 + rng.Uniform(500));
  }
  return samples;
}

TEST(Dataset, WriteScanSelectsQuality) {
  InMemoryFileSystem fs;
  std::vector<Sample> samples = MakeSamples(2000, 4);
  {
    auto meta = fs.NewWritableFile("meta");
    auto media = fs.NewWritableFile("media");
    DatasetWriterOptions opts;
    opts.rows_per_group = 500;
    DatasetWriter writer(meta->get(), media->get(), opts);
    ASSERT_TRUE(writer.Write(samples).ok());
  }
  auto reader = *TrainingReader::Open(*fs.NewReadableFile("meta"),
                                      *fs.NewReadableFile("media"));
  auto stats = reader->Scan(/*min_quality=*/0.75, /*full_media_fraction=*/0.1);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  size_t expected = 0;
  for (const Sample& s : samples) {
    if (s.quality >= 0.75) ++expected;
  }
  EXPECT_EQ(stats->samples_selected, expected);
  EXPECT_GT(stats->full_media_lookups, 0u);
  EXPECT_LT(stats->full_media_lookups, stats->samples_selected);
}

TEST(Dataset, QualitySortReducesGroupsTouched) {
  // With quality-sorted layout, high-quality rows live in the leading
  // groups, so a top-25% scan reads fewer heavy-column bytes.
  std::vector<Sample> samples = MakeSamples(4000, 5);

  auto run = [&](bool sorted) -> uint64_t {
    InMemoryFileSystem fs;
    auto meta = fs.NewWritableFile("meta");
    auto media = fs.NewWritableFile("media");
    DatasetWriterOptions opts;
    opts.quality_sorted = sorted;
    opts.rows_per_group = 500;
    DatasetWriter writer(meta->get(), media->get(), opts);
    BULLION_CHECK_OK(writer.Write(samples));
    auto reader = *TrainingReader::Open(*fs.NewReadableFile("meta"),
                                        *fs.NewReadableFile("media"));
    fs.ResetStats();
    auto stats = reader->Scan(0.75, 0.0);
    BULLION_CHECK_OK(stats.status());
    return fs.stats().bytes_read;
  };

  uint64_t sorted_bytes = run(true);
  uint64_t unsorted_bytes = run(false);
  EXPECT_LT(sorted_bytes, unsorted_bytes * 2 / 3)
      << "quality sorting should cut filtered-scan read volume";
}

TEST(Dataset, SortedScanYieldsSameSelection) {
  std::vector<Sample> samples = MakeSamples(1000, 6);
  auto count = [&](bool sorted) -> uint64_t {
    InMemoryFileSystem fs;
    auto meta = fs.NewWritableFile("meta");
    auto media = fs.NewWritableFile("media");
    DatasetWriterOptions opts;
    opts.quality_sorted = sorted;
    DatasetWriter writer(meta->get(), media->get(), opts);
    BULLION_CHECK_OK(writer.Write(samples));
    auto reader = *TrainingReader::Open(*fs.NewReadableFile("meta"),
                                        *fs.NewReadableFile("media"));
    auto stats = reader->Scan(0.5, 0.0);
    BULLION_CHECK_OK(stats.status());
    return stats->samples_selected;
  };
  EXPECT_EQ(count(true), count(false));
}

TEST(Dataset, MediaLookupReturnsRightBlob) {
  InMemoryFileSystem fs;
  std::vector<Sample> samples = MakeSamples(100, 7);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i].media_blob = "blob#" + std::to_string(i);
  }
  {
    auto meta = fs.NewWritableFile("meta");
    auto media = fs.NewWritableFile("media");
    DatasetWriter writer(meta->get(), media->get(), {});
    ASSERT_TRUE(writer.Write(samples).ok());
  }
  // Read meta table directly; follow each locator and check identity.
  auto meta_reader = *TableReader::Open(*fs.NewReadableFile("meta"));
  auto media_reader = *avro::AvroReader::Open(*fs.NewReadableFile("media"));
  ReadOptions ropts;
  std::vector<ColumnVector> cols;
  auto idx = meta_reader->ResolveColumns(
      {"sample_id", "media_offset", "media_index"});
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(meta_reader->ReadProjection(0, *idx, ropts, &cols).ok());
  for (size_t r = 0; r < cols[0].num_rows(); ++r) {
    avro::RecordLocator loc;
    loc.block_offset = static_cast<uint64_t>(cols[1].int_values()[r]);
    loc.index_in_block = static_cast<uint32_t>(cols[2].int_values()[r]);
    auto rec = media_reader->ReadRecord(loc);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(std::get<int64_t>((*rec)[0]), cols[0].int_values()[r]);
    EXPECT_EQ(std::get<std::string>((*rec)[1]),
              "blob#" + std::to_string(cols[0].int_values()[r]));
  }
}

}  // namespace
}  // namespace multimodal
}  // namespace bullion

// Unit tests for the common substrate: Status/Result, Slice/Buffer,
// bit utilities, bitmap, varint/zigzag, hashes, PRNG.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bit_util.h"
#include "common/bitmap.h"
#include "common/buffer.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/varint.h"

namespace bullion {
namespace {

TEST(Status, OkIsCheapAndOk) {
  Status st = Status::OK();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::Corruption("bad page");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(st.message(), "bad page");
  EXPECT_EQ(st.ToString(), "Corruption: bad page");
}

TEST(Status, CopyAndMove) {
  Status a = Status::IOError("x");
  Status b = a;  // copy
  EXPECT_TRUE(b.IsIOError());
  EXPECT_TRUE(a.IsIOError());
  Status c = std::move(a);
  EXPECT_TRUE(c.IsIOError());
}

TEST(Status, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    BULLION_RETURN_NOT_OK(Status::NotFound("gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsNotFound());
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.ValueOr(7), 42);

  Result<int> err = Status::InvalidArgument("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ValueOr(7), 7);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("io");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    BULLION_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsIOError());
}

TEST(Slice, BasicViews) {
  std::string s = "hello world";
  Slice slice(s);
  EXPECT_EQ(slice.size(), 11u);
  EXPECT_EQ(slice.SubSlice(6, 5).ToString(), "world");
  slice.RemovePrefix(6);
  EXPECT_EQ(slice.ToString(), "world");
  EXPECT_EQ(Slice("abc", 3), Slice(std::string("abc")));
  EXPECT_NE(Slice("abc", 3), Slice("abd", 3));
  EXPECT_TRUE(Slice().empty());
}

TEST(Buffer, AppendAndBuild) {
  BufferBuilder b;
  b.Append<uint32_t>(0xAABBCCDD);
  b.Append<uint8_t>(0x11);
  b.AppendBytes("xy", 2);
  Buffer buf = b.Finish();
  ASSERT_EQ(buf.size(), 7u);
  SliceReader r(buf.AsSlice());
  EXPECT_EQ(r.Read<uint32_t>(), 0xAABBCCDDu);
  EXPECT_EQ(r.Read<uint8_t>(), 0x11);
  EXPECT_EQ(r.ReadBytes(2).ToString(), "xy");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Buffer, WriteAtBackPatch) {
  BufferBuilder b;
  b.Append<uint32_t>(0);
  b.AppendBytes("data", 4);
  b.WriteAt<uint32_t>(0, 4);
  Buffer buf = b.Finish();
  SliceReader r(buf.AsSlice());
  EXPECT_EQ(r.Read<uint32_t>(), 4u);
}

TEST(BitUtil, BitWidth) {
  EXPECT_EQ(bit_util::BitWidth(0), 0);
  EXPECT_EQ(bit_util::BitWidth(1), 1);
  EXPECT_EQ(bit_util::BitWidth(2), 2);
  EXPECT_EQ(bit_util::BitWidth(255), 8);
  EXPECT_EQ(bit_util::BitWidth(256), 9);
  EXPECT_EQ(bit_util::BitWidth(~0ull), 64);
}

TEST(BitUtil, PackUnpackAllWidths) {
  Random rng(3);
  for (int width = 1; width <= 64; ++width) {
    std::vector<uint64_t> values(100);
    uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
    for (auto& v : values) v = rng.Next() & mask;
    std::vector<uint8_t> packed;
    bit_util::PackBits(values.data(), values.size(), width, &packed);
    EXPECT_EQ(packed.size(), bit_util::RoundUpToBytes(100 * width));
    std::vector<uint64_t> out;
    bit_util::UnpackBits(Slice(packed.data(), packed.size()), 100, width,
                         &out);
    EXPECT_EQ(out, values) << "width " << width;
    // Random access matches.
    for (size_t i : {size_t{0}, size_t{37}, size_t{99}}) {
      EXPECT_EQ(bit_util::GetPacked(Slice(packed.data(), packed.size()), i,
                                    width),
                values[i]);
    }
    // In-place update.
    bit_util::SetPacked(packed.data(), 37, width, 0);
    EXPECT_EQ(
        bit_util::GetPacked(Slice(packed.data(), packed.size()), 37, width),
        0u);
    EXPECT_EQ(
        bit_util::GetPacked(Slice(packed.data(), packed.size()), 36, width),
        values[36]);
    EXPECT_EQ(
        bit_util::GetPacked(Slice(packed.data(), packed.size()), 38, width),
        values[38]);
  }
}

TEST(BitWriterReader, MixedWidths) {
  BitWriter w;
  w.Write(0b101, 3);
  w.WriteBit(true);
  w.Write(0xFFFF, 16);
  w.Write(1, 1);
  BitReader r(Slice(w.bytes().data(), w.bytes().size()));
  EXPECT_EQ(r.Read(3), 0b101u);
  EXPECT_TRUE(r.ReadBit());
  EXPECT_EQ(r.Read(16), 0xFFFFu);
  EXPECT_EQ(r.Read(1), 1u);
}

TEST(Bitmap, SetGetCount) {
  Bitmap bm(100);
  EXPECT_EQ(bm.CountSet(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(99);
  EXPECT_EQ(bm.CountSet(), 4u);
  EXPECT_TRUE(bm.Get(63));
  EXPECT_FALSE(bm.Get(62));
  bm.Clear(63);
  EXPECT_FALSE(bm.Get(63));
  EXPECT_EQ(bm.SetIndices(), (std::vector<uint32_t>{0, 64, 99}));
}

TEST(Bitmap, SerializeRoundTrip) {
  Bitmap bm(77);
  for (size_t i = 0; i < 77; i += 3) bm.Set(i);
  BufferBuilder b;
  bm.Serialize(&b);
  Buffer buf = b.Finish();
  SliceReader r(buf.AsSlice());
  Bitmap back = Bitmap::Deserialize(&r);
  EXPECT_EQ(back, bm);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Varint, RoundTripBoundaries) {
  const uint64_t cases[] = {0,    1,     127,        128,
                            16383, 16384, (1ull << 32), ~0ull};
  for (uint64_t v : cases) {
    std::vector<uint8_t> buf;
    varint::PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), static_cast<size_t>(varint::VarintLength(v)));
    size_t pos = 0;
    uint64_t out;
    ASSERT_TRUE(varint::GetVarint64(Slice(buf.data(), buf.size()), &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, TruncatedFails) {
  std::vector<uint8_t> buf;
  varint::PutVarint64(&buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(varint::GetVarint64(Slice(buf.data(), buf.size()), &pos, &out));
}

TEST(Varint, ZigZagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -123456789};
  for (int64_t v : cases) {
    EXPECT_EQ(varint::ZigZagDecode(varint::ZigZagEncode(v)), v) << v;
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(varint::ZigZagEncode(0), 0u);
  EXPECT_EQ(varint::ZigZagEncode(-1), 1u);
  EXPECT_EQ(varint::ZigZagEncode(1), 2u);
}

TEST(Hash, XxHash64KnownProperties) {
  // Deterministic, seed-sensitive, input-sensitive.
  std::string data = "the quick brown fox";
  uint64_t h1 = XxHash64(data.data(), data.size());
  EXPECT_EQ(h1, XxHash64(data.data(), data.size()));
  EXPECT_NE(h1, XxHash64(data.data(), data.size(), 1));
  std::string data2 = "the quick brown foy";
  EXPECT_NE(h1, XxHash64(data2.data(), data2.size()));
}

TEST(Hash, XxHash64AllLengthPaths) {
  // Exercise <4, <8, <32, and >=32 byte paths; distinct outputs.
  std::vector<uint8_t> buf(100);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i);
  std::unordered_set<uint64_t> seen;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 31u, 32u, 33u, 100u}) {
    seen.insert(XxHash64(buf.data(), len));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Hash, Crc32cKnownVector) {
  // Standard test vector: CRC32C("123456789") = 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Random, DeterministicAndUniform) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Random c(43);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += c.NextDouble();
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, GaussianMoments) {
  Random rng(7);
  double sum = 0, sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

}  // namespace
}  // namespace bullion

// The compliant twin of bad/src/core/locker.h: guarded header,
// annotated Mutex member, smart-pointer ownership, scoped NOLINT.

#pragma once

#include <memory>

#define GUARDED_BY(x)

class Mutex {};

class Registry {
 public:
  std::unique_ptr<int> Make() { return std::make_unique<int>(7); }

 private:
  Mutex mu_;
  long count_ GUARDED_BY(mu_);  // NOLINT(runtime/int)
};

Registry& Get();

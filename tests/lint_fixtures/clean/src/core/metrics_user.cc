// Well-formed, documented metric and documented env var.
#include <cstdlib>

#include "core/locker.h"

void RegisterMetrics() {
  Get().GetHistogram("bullion.core.lookup_ns");
}

const char* ReadMode() { return std::getenv("BULLION_CORE_MODE"); }

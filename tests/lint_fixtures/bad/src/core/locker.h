// Seeds [include-guard] (no pragma guard), [raw-mutex] (std::mutex
// member), [mutex-unannotated] (Mutex member, zero GUARDED_BY in
// file), [raw-new], and [bare-nolint].

#include <mutex>

class Mutex {};

class Registry {
 public:
  int* Leak() { return new int(7); }  // -> raw-new

 private:
  std::mutex raw_mu_;  // -> raw-mutex
  Mutex mu_;           // -> mutex-unannotated (no GUARDED_BY anywhere)
  long count_;         // NOLINT
};

Registry& Get();

// Seeds [metric-name] (malformed) and [metric-docs] (well-formed but
// absent from src/obs/README.md).
#include "core/locker.h"

void RegisterMetrics() {
  Get().GetCounter("BadMetric-Name");             // -> metric-name
  Get().GetHistogram("bullion.core.orphan_ns");   // -> metric-docs
  Get().GetHistogram("bullion.core.documented_ns");  // fine
}

// Seeds [env-var-docs]: BULLION_SECRET_KNOB appears in no .md file.
#include <cstdlib>

const char* ReadKnob() { return std::getenv("BULLION_SECRET_KNOB"); }

// Writer/reader/footer/page round-trip tests for the Bullion format.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "format/column_vector.h"
#include "format/footer.h"
#include "format/reader.h"
#include "format/schema.h"
#include "format/writer.h"
#include "io/file.h"

namespace bullion {
namespace {

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"ts", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kTimestamp, false});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kQualityScore, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq_cids",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  fields.push_back({"emb",
                    DataType::List(DataType::Primitive(PhysicalType::kFloat32)),
                    LogicalType::kEmbedding, false});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeMixedData(const Schema& schema, size_t rows,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window;
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(r / 4));         // uid
    cols[1].AppendInt(1700000000 + static_cast<int64_t>(r)); // ts
    cols[2].AppendReal(rng.NextDouble());                    // score
    cols[3].AppendBinary("tag" + std::to_string(r % 5));     // tag
    // clk_seq_cids: sliding window of 16 ids.
    if (window.empty() || rng.Bernoulli(0.25)) {
      window.insert(window.begin(), rng.UniformRange(0, 99));
      if (window.size() > 16) window.pop_back();
    }
    cols[4].AppendIntList(window);
    // emb: 8-dim embedding in (-1, 1).
    std::vector<double> emb(8);
    for (double& x : emb) x = std::tanh(rng.NextGaussian());
    cols[5].AppendRealList(emb);
  }
  return cols;
}

struct WriteResult {
  InMemoryFileSystem fs;
  std::string name = "t.bullion";
};

Status WriteTable(InMemoryFileSystem* fs, const std::string& name,
                  const Schema& schema,
                  const std::vector<std::vector<ColumnVector>>& groups,
                  WriterOptions options = {}) {
  auto file_res = fs->NewWritableFile(name);
  if (!file_res.ok()) return file_res.status();
  TableWriter writer(schema, file_res->get(), options);
  for (const auto& g : groups) {
    BULLION_RETURN_NOT_OK(writer.WriteRowGroup(g));
  }
  return writer.Finish();
}

Result<std::unique_ptr<TableReader>> OpenTable(InMemoryFileSystem* fs,
                                               const std::string& name) {
  auto file_res = fs->NewReadableFile(name);
  if (!file_res.ok()) return file_res.status();
  return TableReader::Open(std::move(*file_res));
}

TEST(WriterReader, RoundTripMixedSchema) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 1000, 42);
  InMemoryFileSystem fs;
  WriterOptions wopts;
  wopts.rows_per_page = 128;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}, wopts).ok());

  auto reader_res = OpenTable(&fs, "t");
  ASSERT_TRUE(reader_res.ok()) << reader_res.status().ToString();
  auto& reader = *reader_res;
  EXPECT_EQ(reader->num_rows(), 1000u);
  EXPECT_EQ(reader->num_row_groups(), 1u);
  EXPECT_EQ(reader->num_columns(), schema.num_leaves());

  ReadOptions ropts;
  for (uint32_t c = 0; c < reader->num_columns(); ++c) {
    ColumnVector col;
    ASSERT_TRUE(reader->ReadColumnChunk(0, c, ropts, &col).ok())
        << "column " << c;
    EXPECT_EQ(col, data[c]) << "column " << schema.leaves()[c].name;
  }
}

TEST(WriterReader, MultipleRowGroups) {
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (int g = 0; g < 3; ++g) {
    groups.push_back(MakeMixedData(schema, 500, 100 + g));
  }
  InMemoryFileSystem fs;
  WriterOptions wopts;
  wopts.rows_per_page = 200;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, groups, wopts).ok());

  auto reader = *OpenTable(&fs, "t");
  EXPECT_EQ(reader->num_rows(), 1500u);
  EXPECT_EQ(reader->num_row_groups(), 3u);
  ReadOptions ropts;
  for (uint32_t g = 0; g < 3; ++g) {
    for (uint32_t c = 0; c < reader->num_columns(); ++c) {
      ColumnVector col;
      ASSERT_TRUE(reader->ReadColumnChunk(g, c, ropts, &col).ok());
      EXPECT_EQ(col, groups[g][c]) << "g=" << g << " c=" << c;
    }
  }
}

TEST(WriterReader, ProjectionWithCoalescing) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 800, 7);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());

  auto reader = *OpenTable(&fs, "t");
  auto cols_res = reader->ResolveColumns({"emb", "uid"});
  ASSERT_TRUE(cols_res.ok());
  ReadOptions ropts;
  std::vector<ColumnVector> out;
  ASSERT_TRUE(reader->ReadProjection(0, *cols_res, ropts, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], data[5]);  // emb
  EXPECT_EQ(out[1], data[0]);  // uid
}

TEST(WriterReader, ProjectionCoalescesIo) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 500, 8);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");

  // Adjacent columns with a generous gap: one coalesced read.
  fs.ResetStats();
  ReadOptions coalesce;
  coalesce.coalesce_gap_bytes = 1 << 20;
  coalesce.max_coalesced_bytes = 64ull << 20;
  std::vector<ColumnVector> out;
  ASSERT_TRUE(
      reader->ReadProjection(0, {0, 1, 2}, coalesce, &out).ok());
  uint64_t coalesced_ops = fs.stats().read_ops;

  fs.ResetStats();
  ReadOptions nogap;
  nogap.coalesce_gap_bytes = 0;
  // Force per-chunk reads by disallowing any merge.
  nogap.max_coalesced_bytes = 1;
  ASSERT_TRUE(reader->ReadProjection(0, {0, 1, 2}, nogap, &out).ok());
  uint64_t separate_ops = fs.stats().read_ops;

  EXPECT_LT(coalesced_ops, separate_ops);
  EXPECT_EQ(coalesced_ops, 1u);
}

TEST(WriterReader, ColumnReorderingKeepsData) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 300, 9);
  InMemoryFileSystem fs;
  WriterOptions wopts;
  wopts.column_order = {5, 3, 1, 0, 2, 4};  // arbitrary placement
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}, wopts).ok());
  auto reader = *OpenTable(&fs, "t");
  ReadOptions ropts;
  for (uint32_t c = 0; c < reader->num_columns(); ++c) {
    ColumnVector col;
    ASSERT_TRUE(reader->ReadColumnChunk(0, c, ropts, &col).ok());
    EXPECT_EQ(col, data[c]) << "c=" << c;
  }
}

TEST(WriterReader, QualitySortReordersRows) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 200, 10);
  InMemoryFileSystem fs;
  WriterOptions wopts;
  wopts.quality_sort_column = 2;  // "score"
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}, wopts).ok());
  auto reader = *OpenTable(&fs, "t");
  ReadOptions ropts;
  ColumnVector scores;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 2, ropts, &scores).ok());
  for (size_t i = 1; i < scores.real_values().size(); ++i) {
    EXPECT_GE(scores.real_values()[i - 1], scores.real_values()[i]);
  }
  // Row alignment preserved: uid[i] should carry the score's original
  // row, checked via joint permutation.
  ColumnVector uid;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, ropts, &uid).ok());
  std::vector<uint32_t> perm = SortPermutationDescending(
      data[2].real_values());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(uid.int_values()[i], data[0].int_values()[perm[i]]);
  }
}

TEST(WriterReader, VerifyChecksumsClean) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 400, 11);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");
  EXPECT_TRUE(reader->VerifyChecksums().ok());
}

TEST(WriterReader, DetectsCorruption) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 400, 12);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  // Flip a byte in the middle of the data region.
  {
    auto f = fs.OpenForUpdate("t");
    ASSERT_TRUE(f.ok());
    uint8_t evil = 0xA5;
    ASSERT_TRUE((*f)->WriteAt(100, Slice(&evil, 1)).ok());
  }
  auto reader = *OpenTable(&fs, "t");
  EXPECT_FALSE(reader->VerifyChecksums().ok());
}

TEST(WriterReader, OpenRejectsGarbage) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("junk");
    std::vector<uint8_t> junk(256, 0x3C);
    ASSERT_TRUE((*f)->Append(Slice(junk.data(), junk.size())).ok());
  }
  auto res = OpenTable(&fs, "junk");
  EXPECT_FALSE(res.ok());
}

TEST(WriterReader, EmptyRowGroupRejected) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> empty;
  for (const LeafColumn& leaf : schema.leaves()) {
    empty.push_back(ColumnVector::ForLeaf(leaf));
  }
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("t");
  TableWriter writer(schema, f->get(), {});
  EXPECT_FALSE(writer.WriteRowGroup(empty).ok());
}

TEST(WriterReader, FindColumnBinarySearch) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 100, 13);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");
  for (uint32_t c = 0; c < schema.num_leaves(); ++c) {
    auto idx = reader->footer().FindColumn(schema.leaves()[c].name);
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, c);
  }
  EXPECT_FALSE(reader->footer().FindColumn("no_such_column").ok());
}

TEST(WriterReader, WideSchemaManyColumns) {
  // A narrow slice of the Table 1 world: hundreds of columns.
  std::vector<Field> fields;
  for (int i = 0; i < 300; ++i) {
    fields.push_back({"feat_" + std::to_string(i),
                      DataType::Primitive(PhysicalType::kInt64),
                      LogicalType::kPlain, false});
  }
  Schema schema(std::move(fields));
  Random rng(77);
  std::vector<ColumnVector> data;
  for (const LeafColumn& leaf : schema.leaves()) {
    ColumnVector col = ColumnVector::ForLeaf(leaf);
    for (int r = 0; r < 50; ++r) col.AppendInt(rng.UniformRange(0, 1000));
    data.push_back(std::move(col));
  }
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "wide", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "wide");
  EXPECT_EQ(reader->num_columns(), 300u);
  ReadOptions ropts;
  ColumnVector col;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 123, ropts, &col).ok());
  EXPECT_EQ(col, data[123]);
}

TEST(WriterReader, StructFlattening) {
  std::vector<Field> fields;
  fields.push_back(
      {"pair",
       DataType::Struct({DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                         DataType::List(DataType::Primitive(PhysicalType::kFloat32))}),
       LogicalType::kPlain, false});
  Schema schema(std::move(fields));
  ASSERT_EQ(schema.num_leaves(), 2u);
  EXPECT_EQ(schema.leaves()[0].name, "pair.f0");
  EXPECT_EQ(schema.leaves()[1].name, "pair.f1");
  EXPECT_EQ(schema.leaves()[0].list_depth, 1);

  std::vector<ColumnVector> data;
  data.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  data.push_back(ColumnVector::ForLeaf(schema.leaves()[1]));
  for (int r = 0; r < 100; ++r) {
    data[0].AppendIntList({r, r + 1, r + 2});
    data[1].AppendRealList({r * 0.5, r * 0.25});
  }
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");
  auto leaves = schema.LeavesOfField("pair");
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(leaves->size(), 2u);
  ReadOptions ropts;
  ColumnVector col;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, ropts, &col).ok());
  EXPECT_EQ(col, data[0]);
}

TEST(WriterReader, ListOfListColumns) {
  std::vector<Field> fields;
  fields.push_back({"nested",
                    DataType::List(DataType::List(
                        DataType::Primitive(PhysicalType::kInt64))),
                    LogicalType::kPlain, false});
  Schema schema(std::move(fields));
  ASSERT_EQ(schema.leaves()[0].list_depth, 2);

  std::vector<ColumnVector> data;
  data.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  Random rng(3);
  for (int r = 0; r < 200; ++r) {
    std::vector<std::vector<int64_t>> row;
    size_t inner = rng.Uniform(4);
    for (size_t i = 0; i < inner; ++i) {
      std::vector<int64_t> v(rng.Uniform(6));
      for (auto& x : v) x = rng.UniformRange(-50, 50);
      row.push_back(v);
    }
    data[0].AppendIntListList(row);
  }
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");
  ReadOptions ropts;
  ColumnVector col;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, ropts, &col).ok());
  EXPECT_EQ(col, data[0]);
}

TEST(Footer, ReconstructSchemaLeafLevel) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 50, 15);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  auto reader = *OpenTable(&fs, "t");
  Schema rec = reader->footer().ReconstructSchema();
  ASSERT_EQ(rec.num_leaves(), schema.num_leaves());
  for (uint32_t c = 0; c < schema.num_leaves(); ++c) {
    EXPECT_EQ(rec.leaves()[c].name, schema.leaves()[c].name);
    EXPECT_EQ(rec.leaves()[c].physical, schema.leaves()[c].physical);
    EXPECT_EQ(rec.leaves()[c].list_depth, schema.leaves()[c].list_depth);
  }
}

TEST(Footer, OpenIsTwoReads) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> data = MakeMixedData(schema, 100, 16);
  InMemoryFileSystem fs;
  ASSERT_TRUE(WriteTable(&fs, "t", schema, {data}).ok());
  fs.ResetStats();
  auto reader = *OpenTable(&fs, "t");
  EXPECT_EQ(fs.stats().read_ops, 2u) << "open must be trailer + footer";
}

}  // namespace
}  // namespace bullion

// Read-planner tests: coalescing policy edge cases, plan accounting,
// and equivalence with the reader's projection planning.

#include <gtest/gtest.h>

#include "io/read_planner.h"

namespace bullion {
namespace {

ReadPlanOptions Opts(uint64_t gap, uint64_t max) {
  ReadPlanOptions o;
  o.coalesce_gap_bytes = gap;
  o.max_coalesced_bytes = max;
  return o;
}

TEST(ReadPlanner, EmptyInputYieldsEmptyPlan) {
  ReadPlan plan = BuildReadPlan({}, Opts(64, 1024));
  EXPECT_EQ(plan.num_reads(), 0u);
  EXPECT_EQ(plan.total_io_bytes(), 0u);
  EXPECT_EQ(plan.total_chunk_bytes(), 0u);
}

TEST(ReadPlanner, SingleChunkSingleRead) {
  ReadPlan plan = BuildReadPlan({{100, 200, 7}}, Opts(64, 1024));
  ASSERT_EQ(plan.num_reads(), 1u);
  EXPECT_EQ(plan.reads[0].begin, 100u);
  EXPECT_EQ(plan.reads[0].end, 200u);
  ASSERT_EQ(plan.reads[0].chunks.size(), 1u);
  EXPECT_EQ(plan.reads[0].chunks[0].user_index, 7u);
}

TEST(ReadPlanner, AdjacentChunksCoalesce) {
  ReadPlan plan = BuildReadPlan({{0, 100, 0}, {100, 200, 1}}, Opts(0, 1024));
  ASSERT_EQ(plan.num_reads(), 1u);
  EXPECT_EQ(plan.reads[0].begin, 0u);
  EXPECT_EQ(plan.reads[0].end, 200u);
  EXPECT_EQ(plan.total_io_bytes(), 200u);
  EXPECT_EQ(plan.total_chunk_bytes(), 200u);
}

TEST(ReadPlanner, GapExactlyEqualToThresholdCoalesces) {
  // next.begin == prev_end + gap must merge (merge on <=, split on >).
  ReadPlan plan = BuildReadPlan({{0, 100, 0}, {164, 200, 1}}, Opts(64, 1024));
  ASSERT_EQ(plan.num_reads(), 1u);
  EXPECT_EQ(plan.reads[0].begin, 0u);
  EXPECT_EQ(plan.reads[0].end, 200u);
  EXPECT_EQ(plan.total_io_bytes(), 200u);
  EXPECT_EQ(plan.total_chunk_bytes(), 136u);  // 64 gap bytes over-read
}

TEST(ReadPlanner, GapOneByteOverThresholdSplits) {
  ReadPlan plan = BuildReadPlan({{0, 100, 0}, {165, 200, 1}}, Opts(64, 1024));
  ASSERT_EQ(plan.num_reads(), 2u);
  EXPECT_EQ(plan.reads[0].end, 100u);
  EXPECT_EQ(plan.reads[1].begin, 165u);
}

TEST(ReadPlanner, MaxCoalescedBytesBoundsMerging) {
  // Three adjacent 100-byte chunks with a 250-byte I/O cap: merging the
  // third would make 300 bytes, so it starts a new read.
  ReadPlan plan = BuildReadPlan({{0, 100, 0}, {100, 200, 1}, {200, 300, 2}},
                                Opts(64, 250));
  ASSERT_EQ(plan.num_reads(), 2u);
  EXPECT_EQ(plan.reads[0].chunks.size(), 2u);
  EXPECT_EQ(plan.reads[1].chunks.size(), 1u);
}

TEST(ReadPlanner, SingleChunkLargerThanMaxIsNeverSplit) {
  // One 4 KiB chunk under a 1 KiB cap still becomes one read: chunks
  // are atomic. Neighbors must not merge into the oversized read.
  ReadPlan plan = BuildReadPlan({{0, 4096, 0}, {4096, 4196, 1}}, Opts(64, 1024));
  ASSERT_EQ(plan.num_reads(), 2u);
  EXPECT_EQ(plan.reads[0].begin, 0u);
  EXPECT_EQ(plan.reads[0].end, 4096u);
  ASSERT_EQ(plan.reads[0].chunks.size(), 1u);
  EXPECT_EQ(plan.reads[1].begin, 4096u);
}

TEST(ReadPlanner, UnsortedInputIsSortedAndTagsSurvive) {
  ReadPlan plan =
      BuildReadPlan({{500, 600, 0}, {0, 100, 1}, {90, 220, 2}}, Opts(0, 1024));
  ASSERT_EQ(plan.num_reads(), 2u);
  // Overlapping chunks [0,100) and [90,220) merge; tags route results.
  EXPECT_EQ(plan.reads[0].begin, 0u);
  EXPECT_EQ(plan.reads[0].end, 220u);
  ASSERT_EQ(plan.reads[0].chunks.size(), 2u);
  EXPECT_EQ(plan.reads[0].chunks[0].user_index, 1u);
  EXPECT_EQ(plan.reads[0].chunks[1].user_index, 2u);
  EXPECT_EQ(plan.reads[1].chunks[0].user_index, 0u);
}

TEST(ReadPlanner, EveryChunkAppearsExactlyOnce) {
  std::vector<ChunkRequest> chunks;
  for (size_t i = 0; i < 100; ++i) {
    uint64_t begin = i * 1000;
    chunks.push_back({begin, begin + 700, i});
  }
  ReadPlan plan = BuildReadPlan(chunks, Opts(512, 8 * 1024));
  std::vector<bool> seen(chunks.size(), false);
  for (const CoalescedRead& read : plan.reads) {
    for (const ChunkRequest& c : read.chunks) {
      EXPECT_GE(c.begin, read.begin);
      EXPECT_LE(c.end, read.end);
      EXPECT_FALSE(seen[c.user_index]) << "chunk planned twice";
      seen[c.user_index] = true;
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "chunk " << i << " missing from plan";
  }
  EXPECT_EQ(plan.total_chunk_bytes(), 100u * 700u);
}

}  // namespace
}  // namespace bullion

// Pins the project-invariant linter (tools/lint.py):
//   * every rule fires on the seeded violations in
//     tests/lint_fixtures/bad/,
//   * the compliant twin tree in tests/lint_fixtures/clean/ passes,
//   * and the real tree passes — so a rule regression or a new
//     violation in src/ both fail ctest, not just CI.
//
// The linter is exercised through its real CLI (popen), the same way
// CI and the cmake `lint` target invoke it.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

// tests/lint_test.cc -> repo root, derived from __FILE__ so the test
// works from any build directory.
std::string RepoRoot() {
  std::string file = __FILE__;
  size_t slash = file.rfind('/');
  std::string tests_dir = file.substr(0, slash);
  slash = tests_dir.rfind('/');
  return tests_dir.substr(0, slash);
}

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& root_arg) {
  std::string cmd = "python3 " + RepoRoot() + "/tools/lint.py --root " +
                    root_arg + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return run;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    run.output.append(buf.data(), n);
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) run.exit_code = WEXITSTATUS(status);
  return run;
}

bool HavePython3() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HavePython3()) GTEST_SKIP() << "python3 not available";
  }
};

TEST_F(LintTest, BadFixtureTripsEveryRule) {
  LintRun run = RunLint(RepoRoot() + "/tests/lint_fixtures/bad");
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // One expectation per rule id: a silently-dead rule is the failure
  // mode this test exists to catch.
  for (const char* rule :
       {"[metric-name]", "[metric-docs]", "[env-var-docs]", "[raw-mutex]",
        "[mutex-unannotated]", "[raw-new]", "[include-guard]",
        "[bare-nolint]"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos)
        << "rule " << rule << " did not fire; output:\n"
        << run.output;
  }
}

TEST_F(LintTest, BadFixtureViolationsCarryFileAndLine) {
  LintRun run = RunLint(RepoRoot() + "/tests/lint_fixtures/bad");
  // Spot-check the path:line: prefix contract the CI annotations rely
  // on (exact line numbers pinned in the fixture sources).
  EXPECT_NE(run.output.find("src/core/locker.h:1: [include-guard]"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("src/core/env_user.cc:4: [env-var-docs]"),
            std::string::npos)
      << run.output;
}

TEST_F(LintTest, CleanFixturePasses) {
  LintRun run = RunLint(RepoRoot() + "/tests/lint_fixtures/clean");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST_F(LintTest, RealTreePasses) {
  LintRun run = RunLint(RepoRoot());
  EXPECT_EQ(run.exit_code, 0)
      << "tools/lint.py found violations in the tree:\n"
      << run.output;
}

}  // namespace

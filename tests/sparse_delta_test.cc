// Sliding-window delta encoding tests (§2.2, Figs. 3-4).

#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/cascade.h"
#include "format/sparse_delta.h"

namespace bullion {
namespace {

// Builds a clk_seq_cids-style column: per user, a window of `window`
// ids shifting over time (new id prepended with prob `shift_prob`).
void MakeSlidingWindowData(size_t users, size_t events_per_user,
                           size_t window, double shift_prob, uint64_t seed,
                           std::vector<int64_t>* offsets,
                           std::vector<int64_t>* values) {
  Random rng(seed);
  offsets->clear();
  values->clear();
  offsets->push_back(0);
  for (size_t u = 0; u < users; ++u) {
    std::vector<int64_t> win;
    for (size_t i = 0; i < window; ++i) {
      win.push_back(rng.UniformRange(0, 1000000));
    }
    for (size_t e = 0; e < events_per_user; ++e) {
      if (e > 0 && rng.Bernoulli(shift_prob)) {
        win.insert(win.begin(), rng.UniformRange(0, 1000000));
        win.pop_back();
      }
      values->insert(values->end(), win.begin(), win.end());
      offsets->push_back(static_cast<int64_t>(values->size()));
    }
  }
}

TEST(FindBestWindow, ExactShiftPattern) {
  std::vector<int64_t> prev = {92, 82, 66, 18, 67, 13, 96, 63};
  std::vector<int64_t> cur = {76, 92, 82, 66, 18, 67, 13, 96};  // head insert
  WindowMatch m = FindBestWindow(prev, cur, 4);
  EXPECT_TRUE(m.is_delta);
  EXPECT_EQ(m.head_len, 1u);
  EXPECT_EQ(m.tail_len, 0u);
  EXPECT_EQ(m.range_start, 0u);
  EXPECT_EQ(m.range_end, 7u);
}

TEST(FindBestWindow, IdenticalVectors) {
  std::vector<int64_t> v = {1, 2, 3, 4, 5, 6, 7, 8};
  WindowMatch m = FindBestWindow(v, v, 4);
  EXPECT_TRUE(m.is_delta);
  EXPECT_EQ(m.head_len, 0u);
  EXPECT_EQ(m.tail_len, 0u);
  EXPECT_EQ(m.range_start, 0u);
  EXPECT_EQ(m.range_end, 8u);
}

TEST(FindBestWindow, NoOverlapFallsBackToBase) {
  std::vector<int64_t> prev = {1, 2, 3, 4};
  std::vector<int64_t> cur = {10, 20, 30, 40};
  WindowMatch m = FindBestWindow(prev, cur, 2);
  EXPECT_FALSE(m.is_delta);
  EXPECT_EQ(m.tail_len, 4u);
}

TEST(FindBestWindow, TailAppendPattern) {
  std::vector<int64_t> prev = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> cur = {3, 4, 5, 6, 77, 88};  // drop head, append tail
  WindowMatch m = FindBestWindow(prev, cur, 3);
  EXPECT_TRUE(m.is_delta);
  EXPECT_EQ(m.head_len, 0u);
  EXPECT_EQ(m.tail_len, 2u);
  EXPECT_EQ(m.range_start, 2u);
  EXPECT_EQ(m.range_end, 6u);
}

struct SweepCase {
  double shift_prob;
  size_t window;
};

class SparseDeltaSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SparseDeltaSweep, RoundTrip) {
  std::vector<int64_t> offsets, values;
  MakeSlidingWindowData(20, 30, GetParam().window, GetParam().shift_prob, 3,
                        &offsets, &values);
  auto block = EncodeSparseDeltaColumn(offsets, values);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  std::vector<int64_t> out_offsets, out_values;
  ASSERT_TRUE(
      DecodeSparseDeltaColumn(block->AsSlice(), &out_offsets, &out_values)
          .ok());
  EXPECT_EQ(out_offsets, offsets);
  EXPECT_EQ(out_values, values);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseDeltaSweep,
    ::testing::Values(SweepCase{0.0, 16}, SweepCase{0.1, 16},
                      SweepCase{0.25, 16}, SweepCase{0.5, 64},
                      SweepCase{1.0, 64}, SweepCase{0.25, 256},
                      SweepCase{0.1, 1}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "shift" +
             std::to_string(static_cast<int>(info.param.shift_prob * 100)) +
             "_w" + std::to_string(info.param.window);
    });

TEST(SparseDelta, BeatsGenericEncodingOnSlidingWindows) {
  std::vector<int64_t> offsets, values;
  // 50 users x 40 events, window 256, slow drift: heavy overlap.
  MakeSlidingWindowData(50, 40, 256, 0.3, 7, &offsets, &values);

  auto sparse = EncodeSparseDeltaColumn(offsets, values);
  ASSERT_TRUE(sparse.ok());

  // Generic alternative: cascade over the flattened values.
  auto generic = EncodeInt64Column(values);
  ASSERT_TRUE(generic.ok());

  EXPECT_LT(sparse->size(), generic->size() / 2)
      << "sliding-window delta should save >2x vs generic cascade";
  double ratio = static_cast<double>(values.size() * 8) /
                 static_cast<double>(sparse->size());
  EXPECT_GT(ratio, 8.0) << "expected strong compression on 87% overlap data";
}

TEST(SparseDelta, HandlesEmptyLists) {
  std::vector<int64_t> offsets = {0, 0, 3, 3, 5};
  std::vector<int64_t> values = {1, 2, 3, 4, 5};
  auto block = EncodeSparseDeltaColumn(offsets, values);
  ASSERT_TRUE(block.ok());
  std::vector<int64_t> oo, vv;
  ASSERT_TRUE(DecodeSparseDeltaColumn(block->AsSlice(), &oo, &vv).ok());
  EXPECT_EQ(oo, offsets);
  EXPECT_EQ(vv, values);
}

TEST(SparseDelta, SingleRow) {
  std::vector<int64_t> offsets = {0, 4};
  std::vector<int64_t> values = {9, 8, 7, 6};
  auto block = EncodeSparseDeltaColumn(offsets, values);
  ASSERT_TRUE(block.ok());
  std::vector<int64_t> oo, vv;
  ASSERT_TRUE(DecodeSparseDeltaColumn(block->AsSlice(), &oo, &vv).ok());
  EXPECT_EQ(oo, offsets);
  EXPECT_EQ(vv, values);
}

TEST(SparseDelta, RejectsCorruptBlock) {
  std::vector<int64_t> offsets = {0, 2};
  std::vector<int64_t> values = {1, 2};
  auto block = EncodeSparseDeltaColumn(offsets, values);
  ASSERT_TRUE(block.ok());
  std::vector<uint8_t> bytes(block->data(), block->data() + block->size());
  bytes.resize(bytes.size() / 2);  // truncate
  std::vector<int64_t> oo, vv;
  EXPECT_FALSE(
      DecodeSparseDeltaColumn(Slice(bytes.data(), bytes.size()), &oo, &vv)
          .ok());
}

}  // namespace
}  // namespace bullion

// Storage quantization tests (§2.4): soft-float correctness, error
// bounds, lossless int rehash, mixed precision, dual-column split.

#include <gtest/gtest.h>

#include <cmath>

#include "common/float16.h"
#include "common/random.h"
#include "quant/int_rehash.h"
#include "quant/mixed_precision.h"
#include "quant/quantize.h"

namespace bullion {
namespace {

// ---------------------------------------------------------------------------
// Soft floats.
// ---------------------------------------------------------------------------

TEST(Float16, ExactValuesRoundTrip) {
  // Values exactly representable in FP16 must survive unchanged.
  const float exact[] = {0.0f,  1.0f,   -1.0f,  0.5f,  2.0f,
                         1.5f,  -0.25f, 1024.f, 65504.f /*max*/, 6.1035156e-5f
                         /*min normal*/};
  for (float f : exact) {
    EXPECT_EQ(Float16::FromFloat(f).ToFloat(), f) << f;
  }
}

TEST(Float16, SubnormalsRoundTrip) {
  float min_subnormal = 5.9604645e-8f;  // 2^-24
  EXPECT_EQ(Float16::FromFloat(min_subnormal).ToFloat(), min_subnormal);
  // Below half the min subnormal underflows to zero.
  EXPECT_EQ(Float16::FromFloat(1e-9f).ToFloat(), 0.0f);
}

TEST(Float16, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(Float16::FromFloat(1e6f).ToFloat()));
  EXPECT_TRUE(std::isinf(Float16::FromFloat(-1e6f).ToFloat()));
  EXPECT_LT(Float16::FromFloat(-1e6f).ToFloat(), 0.0f);
}

TEST(Float16, NanPreserved) {
  float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(Float16::FromFloat(nan).ToFloat()));
}

TEST(Float16, RelativeErrorBound) {
  // FP16 has 11 significand bits: rel error <= 2^-11 for normals.
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    float f = static_cast<float>(rng.NextGaussian());
    if (std::abs(f) < 1e-4f) continue;
    float back = Float16::FromFloat(f).ToFloat();
    EXPECT_LE(std::abs(back - f) / std::abs(f), 1.0f / 2048.0f) << f;
  }
}

TEST(BFloat16, ExactAndRange) {
  const float exact[] = {0.0f, 1.0f, -2.0f, 0.5f, 3.0f};
  for (float f : exact) {
    EXPECT_EQ(BFloat16::FromFloat(f).ToFloat(), f) << f;
  }
  // BF16 keeps the FP32 exponent range: 1e38 must NOT overflow.
  EXPECT_FALSE(std::isinf(BFloat16::FromFloat(1e38f).ToFloat()));
  EXPECT_TRUE(std::isnan(BFloat16::FromFloat(std::nanf("")).ToFloat()));
}

TEST(BFloat16, RelativeErrorBound) {
  // 8 significand bits: rel error <= 2^-8.
  Random rng(2);
  for (int i = 0; i < 10000; ++i) {
    float f = static_cast<float>(rng.NextGaussian() * 100.0);
    if (std::abs(f) < 1e-4f) continue;
    float back = BFloat16::FromFloat(f).ToFloat();
    EXPECT_LE(std::abs(back - f) / std::abs(f), 1.0f / 256.0f) << f;
  }
}

TEST(Float8, E4M3SaturatesNoInf) {
  // E4M3 max finite is 448; beyond saturates (NVIDIA semantics).
  float big = Float8E4M3::FromFloat(1e9f).ToFloat();
  EXPECT_FALSE(std::isinf(big));
  EXPECT_FLOAT_EQ(big, 448.0f);
  EXPECT_FLOAT_EQ(Float8E4M3::FromFloat(-1e9f).ToFloat(), -448.0f);
}

TEST(Float8, E5M2HasInfinity) {
  EXPECT_TRUE(std::isinf(Float8E5M2::FromFloat(1e9f).ToFloat()));
  // Max finite 57344.
  EXPECT_FLOAT_EQ(Float8E5M2::FromFloat(57344.0f).ToFloat(), 57344.0f);
}

TEST(Float8, SmallValuesRepresentable) {
  const float vals[] = {0.5f, -0.5f, 0.25f, 1.0f, -2.0f, 0.125f};
  for (float f : vals) {
    EXPECT_EQ(Float8E4M3::FromFloat(f).ToFloat(), f) << f;
    EXPECT_EQ(Float8E5M2::FromFloat(f).ToFloat(), f) << f;
  }
}

TEST(Float8, ExhaustiveE4M3RoundTripThroughFloat) {
  // Every finite FP8 bit pattern must decode and re-encode to itself
  // (codec idempotence over its own representable set).
  for (int b = 0; b < 256; ++b) {
    float f = Float8E4M3::FromBits(static_cast<uint8_t>(b)).ToFloat();
    if (std::isnan(f)) continue;
    uint8_t back = Float8E4M3::FromFloat(f).bits();
    EXPECT_EQ(back, b) << "bit pattern " << b << " value " << f;
  }
}

TEST(Float8, ExhaustiveE5M2RoundTripThroughFloat) {
  for (int b = 0; b < 256; ++b) {
    float f = Float8E5M2::FromBits(static_cast<uint8_t>(b)).ToFloat();
    if (std::isnan(f)) continue;
    uint8_t back = Float8E5M2::FromFloat(f).bits();
    EXPECT_EQ(back, b) << "bit pattern " << b << " value " << f;
  }
}

// ---------------------------------------------------------------------------
// Quantize / dequantize pipelines.
// ---------------------------------------------------------------------------

std::vector<float> MakeEmbeddings(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(std::tanh(rng.NextGaussian() * 0.5));
  }
  return v;
}

TEST(Quantize, ErrorOrderingAcrossPrecisions) {
  std::vector<float> emb = MakeEmbeddings(20000, 3);
  QuantizationError fp16 =
      MeasureQuantizationError(emb, FloatPrecision::kFp16);
  QuantizationError bf16 =
      MeasureQuantizationError(emb, FloatPrecision::kBf16);
  QuantizationError fp8 =
      MeasureQuantizationError(emb, FloatPrecision::kFp8E4M3);
  EXPECT_LT(fp16.relative_l2, bf16.relative_l2);
  EXPECT_LT(bf16.relative_l2, fp8.relative_l2);
  EXPECT_LT(fp16.relative_l2, 1e-3);
  EXPECT_LT(fp8.relative_l2, 0.1);
}

TEST(Quantize, Fp32PathIsLossless) {
  std::vector<float> emb = MakeEmbeddings(1000, 4);
  auto bits = QuantizeFloats(emb, FloatPrecision::kFp32);
  auto back = DequantizeFloats(bits, FloatPrecision::kFp32);
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_EQ(back[i], emb[i]);
  }
}

TEST(Quantize, BitPatternsFitDeclaredWidth) {
  std::vector<float> emb = MakeEmbeddings(1000, 5);
  auto fp16 = QuantizeFloats(emb, FloatPrecision::kFp16);
  for (int64_t b : fp16) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 1 << 16);
  }
  auto fp8 = QuantizeFloats(emb, FloatPrecision::kFp8E4M3);
  for (int64_t b : fp8) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 1 << 8);
  }
}

// ---------------------------------------------------------------------------
// Integer rehash.
// ---------------------------------------------------------------------------

TEST(IntRehash, LosslessRoundTrip) {
  Random rng(6);
  std::vector<int64_t> ids(5000);
  for (auto& x : ids) {
    x = static_cast<int64_t>(rng.Next());  // arbitrary 64-bit hashes
  }
  IntRehasher rehash = IntRehasher::Train(ids);
  auto codes = rehash.Encode(ids);
  auto back = rehash.Decode(codes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ids);
}

TEST(IntRehash, NarrowestWidthChosen) {
  std::vector<int64_t> small = {100, 200, 300};
  EXPECT_EQ(IntRehasher::Train(small).code_type(), PhysicalType::kInt8);

  std::vector<int64_t> medium(5000);
  for (size_t i = 0; i < medium.size(); ++i) {
    medium[i] = static_cast<int64_t>(i * 7919);
  }
  EXPECT_EQ(IntRehasher::Train(medium).code_type(), PhysicalType::kInt16);
  EXPECT_DOUBLE_EQ(IntRehasher::Train(medium).CompressionFactor(), 4.0);
}

TEST(IntRehash, UnseenIdsGetFreshCodes) {
  std::vector<int64_t> train = {10, 20, 30};
  IntRehasher rehash = IntRehasher::Train(train);
  std::vector<int64_t> more = {10, 40, 20, 50};
  auto codes = rehash.Encode(more);
  EXPECT_EQ(rehash.cardinality(), 5u);
  auto back = rehash.Decode(codes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, more);
}

TEST(IntRehash, ExportImportTable) {
  std::vector<int64_t> ids = {7, 11, 13, 7, 11};
  IntRehasher a = IntRehasher::Train(ids);
  IntRehasher b = IntRehasher::FromTable(a.ExportTable());
  auto ca = a.Encode(ids);
  auto cb = b.Encode(ids);
  EXPECT_EQ(ca, cb);
}

TEST(IntRehash, RejectsBadCodes) {
  IntRehasher rehash = IntRehasher::Train(std::vector<int64_t>{1, 2});
  std::vector<int64_t> bad = {5};
  EXPECT_FALSE(rehash.Decode(bad).ok());
}

// ---------------------------------------------------------------------------
// Mixed precision policy.
// ---------------------------------------------------------------------------

TEST(MixedPrecision, TightToleranceForcesWiderType) {
  std::vector<float> emb = MakeEmbeddings(5000, 7);
  PrecisionConstraint loose;
  loose.max_relative_l2 = 0.05;
  PrecisionConstraint tight;
  tight.max_relative_l2 = 1e-4;
  auto a = MixedPrecisionPolicy::Assign(emb, loose);
  auto b = MixedPrecisionPolicy::Assign(emb, tight);
  EXPECT_LT(PrecisionBytes(a.precision), PrecisionBytes(b.precision));
  EXPECT_LE(a.error.relative_l2, 0.05);
  EXPECT_LE(b.error.relative_l2, 1e-4);
}

TEST(MixedPrecision, FloorPinsPrecision) {
  std::vector<float> emb = MakeEmbeddings(1000, 8);
  PrecisionConstraint c;
  c.max_relative_l2 = 1.0;  // anything passes
  c.floor = FloatPrecision::kFp16;
  auto a = MixedPrecisionPolicy::Assign(emb, c);
  EXPECT_TRUE(a.precision == FloatPrecision::kFp16 ||
              a.precision == FloatPrecision::kFp32);
}

TEST(MixedPrecision, PolicyAggregates) {
  MixedPrecisionPolicy policy;
  std::vector<float> emb = MakeEmbeddings(2000, 9);
  PrecisionConstraint loose;
  loose.max_relative_l2 = 0.05;
  policy.SetAssignment("a", MixedPrecisionPolicy::Assign(emb, loose));
  PrecisionConstraint tight;
  tight.max_relative_l2 = 1e-6;
  policy.SetAssignment("b", MixedPrecisionPolicy::Assign(emb, tight));
  EXPECT_GT(policy.AverageBytesPerValue(), 1.0);
  EXPECT_LT(policy.AverageBytesPerValue(), 4.0);
  EXPECT_NE(policy.Find("a"), nullptr);
  EXPECT_EQ(policy.Find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Dual-column decomposition.
// ---------------------------------------------------------------------------

TEST(DualColumn, ReconstructionBeatsHiOnly) {
  std::vector<float> emb = MakeEmbeddings(20000, 10);
  DualColumn dual = SplitDualColumn(emb);
  std::vector<float> full = ReconstructDual(dual);
  std::vector<float> hi = ReconstructHiOnly(dual);
  double err_full = 0, err_hi = 0;
  for (size_t i = 0; i < emb.size(); ++i) {
    err_full += std::abs(full[i] - emb[i]);
    err_hi += std::abs(hi[i] - emb[i]);
  }
  EXPECT_LT(err_full, err_hi / 100.0)
      << "dual reconstruction must be far more accurate than hi-only";
}

TEST(DualColumn, HiOnlyEqualsPlainFp16) {
  std::vector<float> emb = MakeEmbeddings(1000, 11);
  DualColumn dual = SplitDualColumn(emb);
  std::vector<float> hi = ReconstructHiOnly(dual);
  for (size_t i = 0; i < emb.size(); ++i) {
    EXPECT_EQ(hi[i], Float16::FromFloat(emb[i]).ToFloat());
  }
}

}  // namespace
}  // namespace bullion

// Observability subsystem tests: histogram bucket math and quantile
// accuracy, multi-threaded recording (exercised under TSAN in CI),
// registry snapshot consistency and serialization, Chrome-trace JSON
// validity, the disabled-tracing contract, IoStats snapshot/delta
// phase accounting, and PipelineReport populated end-to-end by real
// scans and writes.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HistogramSnapshot;
using obs::LatencyHistogram;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// A minimal JSON validator: enough of RFC 8259 to reject malformed
// output from ToJson() / the trace serializer (unbalanced structure,
// trailing commas, bad numbers). Returns true iff `s` is one complete
// JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (!Expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(char c) { return Peek(c); }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& s) { return JsonChecker(s).Valid(); }

TEST(JsonChecker, SanityOnKnownInputs) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, \"x\", {\"k\": [true, null]}]"));
  EXPECT_FALSE(IsValidJson("{\"k\": 1,}"));   // trailing comma
  EXPECT_FALSE(IsValidJson("[1, 2"));          // unbalanced
  EXPECT_FALSE(IsValidJson("{\"k\" 1}"));      // missing colon
  EXPECT_FALSE(IsValidJson("{} extra"));       // trailing garbage
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values 0..3 get dedicated buckets: bucket lower bound == value and
  // width 1, so quantiles on tiny values are exact, not estimates.
  for (uint64_t v = 0; v < 4; ++v) {
    size_t b = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(b, static_cast<size_t>(v));
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(b), v);
    EXPECT_EQ(LatencyHistogram::BucketWidth(b), 1u);
  }
}

TEST(LatencyHistogram, BucketInvariantsAcrossRange) {
  // Every probe value must land in a bucket whose [lower, lower+width)
  // range contains it, and bucket indices must be monotone in value.
  std::vector<uint64_t> probes;
  for (uint64_t v = 0; v < 300; ++v) probes.push_back(v);
  for (int shift = 9; shift < 63; shift += 3) {
    uint64_t base = uint64_t{1} << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + base / 3);
  }
  probes.push_back(UINT64_MAX);

  size_t prev_bucket = 0;
  uint64_t prev_value = 0;
  for (uint64_t v : probes) {
    size_t b = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets) << "v=" << v;
    uint64_t lo = LatencyHistogram::BucketLowerBound(b);
    uint64_t w = LatencyHistogram::BucketWidth(b);
    EXPECT_LE(lo, v) << "v=" << v;
    // lo + w can overflow only for the last bucket of the top octave.
    if (lo + w > lo) EXPECT_LT(v, lo + w) << "v=" << v;
    if (v >= prev_value) EXPECT_GE(b, prev_bucket) << "v=" << v;
    prev_bucket = b;
    prev_value = v;
  }
}

TEST(LatencyHistogram, CountSumMinMax) {
  LatencyHistogram h;
  HistogramSnapshot empty = h.Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.sum, 0u);
  EXPECT_EQ(empty.min, 0u);
  EXPECT_EQ(empty.max, 0u);
  EXPECT_EQ(empty.mean(), 0.0);

  h.Record(100);
  h.Record(200);
  h.Record(7);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 307u);
  EXPECT_EQ(s.min, 7u);
  EXPECT_EQ(s.max, 200u);
  EXPECT_NEAR(s.mean(), 307.0 / 3, 1e-9);
  // Quantiles are clamped into [min, max].
  EXPECT_GE(s.p50, 7.0);
  EXPECT_LE(s.p999, 200.0);

  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(LatencyHistogram, QuantileAccuracyOnUniformData) {
  // 1..100000 recorded once each: exact pXX is XX% of 100000. The
  // log-bucket midpoint estimate must stay within the documented
  // ~12.5% relative error (we allow 15% for the midpoint rounding).
  constexpr uint64_t kN = 100000;
  LatencyHistogram h;
  for (uint64_t v = 1; v <= kN; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, kN);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, kN);

  const struct {
    double estimate;
    double exact;
  } cases[] = {
      {s.p50, 0.50 * kN},
      {s.p90, 0.90 * kN},
      {s.p99, 0.99 * kN},
      {s.p999, 0.999 * kN},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(c.estimate, c.exact, 0.15 * c.exact)
        << "estimate " << c.estimate << " vs exact " << c.exact;
  }
}

TEST(LatencyHistogram, MultithreadedRecordingLosesNothing) {
  // Relaxed-atomic recording from many threads must drop no samples:
  // count and sum are conserved exactly. (TSAN job re-runs this.)
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(1 + (t * kPerThread + i) % 1000);
      }
    });
  }
  for (auto& th : threads) th.join();

  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  // Sum of 8 full cycles over 1..1000 (kThreads*kPerThread/1000 cycles).
  uint64_t cycles = kThreads * kPerThread / 1000;
  EXPECT_EQ(s.sum, cycles * (1000 * 1001 / 2));
}

// ---------------------------------------------------------------------------
// Counter / Gauge / MetricsRegistry

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.Set(10);
  g.Add(-3);
  g.Add(5);
  EXPECT_EQ(g.value(), 12);
  g.Add(-20);
  EXPECT_EQ(g.value(), -8);  // gauges may go negative transiently
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("test.counter");
  Counter* c2 = reg.GetCounter("test.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("test.other"), c1);
  Gauge* g1 = reg.GetGauge("test.gauge");
  EXPECT_EQ(g1, reg.GetGauge("test.gauge"));
  LatencyHistogram* h1 = reg.GetHistogram("test.hist_ns");
  EXPECT_EQ(h1, reg.GetHistogram("test.hist_ns"));
}

TEST(Metrics, RegistrySnapshotAndSerialization) {
  MetricsRegistry reg;
  reg.GetCounter("unit.reads")->Increment(7);
  reg.GetGauge("unit.depth")->Set(-3);
  LatencyHistogram* h = reg.GetHistogram("unit.lat_ns");
  h->Record(100);
  h->Record(900);

  obs::RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "unit.reads");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 2u);
  EXPECT_EQ(snap.histograms[0].second.sum, 1000u);

  std::string json = snap.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"unit.reads\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.lat_ns\""), std::string::npos);

  std::string prom = snap.ToPrometheusText();
  // Prometheus rewrites dots to underscores and declares types.
  EXPECT_NE(prom.find("# TYPE unit_reads counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE unit_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("unit_reads 7"), std::string::npos);
  EXPECT_NE(prom.find("unit_depth -3"), std::string::npos);
  EXPECT_NE(prom.find("unit_lat_ns_count 2"), std::string::npos);
  EXPECT_EQ(prom.find("unit.reads"), std::string::npos);  // no raw dots

  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("unit.reads")->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("unit.lat_ns")->Snapshot().count, 0u);
}

TEST(Metrics, GlobalRegistryIsWiredToThePipelines) {
  // A real write + scan must leave samples in the canonical metric
  // names (these are the names src/obs/README.md documents).
  MetricsRegistry& reg = MetricsRegistry::Global();
  LatencyHistogram* encode = reg.GetHistogram("bullion.format.encode_page_ns");
  LatencyHistogram* decode = reg.GetHistogram("bullion.format.decode_chunk_ns");
  HistogramSnapshot encode_before = encode->Snapshot();
  HistogramSnapshot decode_before = decode->Snapshot();

  Schema schema({Field{"v", DataType::Primitive(PhysicalType::kInt64),
                       LogicalType::kPlain, false}});
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (int64_t i = 0; i < 256; ++i) cols[0].AppendInt(i);

  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("t");
    TableWriter writer(schema, f->get(), WriterOptions{});
    ASSERT_TRUE(writer.WriteRowGroup(cols).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = TableReader::Open(*fs.NewReadableFile("t"));
  ASSERT_TRUE(reader.ok());
  auto stream = Scan(reader->get()).Stream();
  ASSERT_TRUE(stream.ok());
  RowBatch batch;
  uint64_t rows = 0;
  for (;;) {
    auto more = (*stream)->Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows += batch.num_rows();
  }
  EXPECT_EQ(rows, 256u);

  EXPECT_GT(encode->Snapshot().count, encode_before.count);
  EXPECT_GT(decode->Snapshot().count, decode_before.count);
}

// ---------------------------------------------------------------------------
// IoStats snapshot / delta

TEST(IoStats, SnapshotAndDelta) {
  IoStats stats;
  stats.read_ops.fetch_add(5);
  stats.bytes_read.fetch_add(4096);
  stats.cache_hits.fetch_add(2);
  IoStatsSnapshot before = stats.Snapshot();
  EXPECT_EQ(before.read_ops, 5u);
  EXPECT_EQ(before.bytes_read, 4096u);

  stats.read_ops.fetch_add(3);
  stats.bytes_read.fetch_add(100);
  stats.seeks.fetch_add(1);
  IoStatsSnapshot after = stats.Snapshot();

  IoStatsSnapshot delta = IoStatsDelta(before, after);
  EXPECT_EQ(delta.read_ops, 3u);
  EXPECT_EQ(delta.bytes_read, 100u);
  EXPECT_EQ(delta.seeks, 1u);
  EXPECT_EQ(delta.cache_hits, 0u);  // unchanged counters subtract to 0
  EXPECT_EQ(delta.write_ops, 0u);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, DisabledByDefaultAndZeroEvents) {
  ASSERT_FALSE(obs::TracingEnabled());
  {
    BULLION_TRACE_SPAN("should.not.record");
  }
  // A session opened after disabled spans sees none of them.
  ASSERT_TRUE(obs::StartTracing("").ok());
  EXPECT_EQ(obs::BufferedTraceEvents(), 0u);
  auto json = obs::StopTracing();
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(IsValidJson(*json)) << *json;
  EXPECT_EQ(json->find("should.not.record"), std::string::npos);
}

TEST(Trace, SessionProducesValidChromeJson) {
  ASSERT_TRUE(obs::StartTracing("").ok());
  EXPECT_TRUE(obs::TracingEnabled());
  // Double-start must fail while a session is live.
  EXPECT_FALSE(obs::StartTracing("").ok());

  {
    BULLION_TRACE_SPAN("test.outer");
    BULLION_TRACE_SPAN("test.inner");
  }
  EXPECT_GE(obs::BufferedTraceEvents(), 2u);

  auto json = obs::StopTracing();
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(obs::TracingEnabled());
  EXPECT_TRUE(IsValidJson(*json)) << *json;
  // Chrome trace-event complete events.
  EXPECT_NE(json->find("\"ph\": \"X\""), std::string::npos) << *json;
  EXPECT_NE(json->find("test.outer"), std::string::npos);
  EXPECT_NE(json->find("test.inner"), std::string::npos);

  // Buffers were cleared: a fresh session starts empty.
  ASSERT_TRUE(obs::StartTracing("").ok());
  EXPECT_EQ(obs::BufferedTraceEvents(), 0u);
  ASSERT_TRUE(obs::StopTracing().ok());
}

TEST(Trace, MultithreadedSpansAllArrive) {
  ASSERT_TRUE(obs::StartTracing("").ok());
  constexpr size_t kThreads = 4;
  constexpr size_t kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        BULLION_TRACE_SPAN("test.mt");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obs::BufferedTraceEvents(), kThreads * kSpansPerThread);
  auto json = obs::StopTracing();
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(IsValidJson(*json));
}

TEST(Trace, PipelineEmitsStageSpans) {
  // The acceptance bar: a traced write + scan produces spans from at
  // least three distinct pipeline stages.
  ASSERT_TRUE(obs::StartTracing("").ok());

  Schema schema({Field{"v", DataType::Primitive(PhysicalType::kInt64),
                       LogicalType::kPlain, false}});
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (int64_t i = 0; i < 512; ++i) cols[0].AppendInt(i);

  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("t");
    auto writer = WriteBuilder(schema, f->get()).Threads(2).Build();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->WriteRowGroup(cols).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto reader = TableReader::Open(*fs.NewReadableFile("t"));
  ASSERT_TRUE(reader.ok());
  auto stream = Scan(reader->get()).Threads(2).Stream();
  ASSERT_TRUE(stream.ok());
  RowBatch batch;
  for (;;) {
    auto more = (*stream)->Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }

  auto json = obs::StopTracing();
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(IsValidJson(*json));
  size_t stages = 0;
  for (const char* name :
       {"scan.prepare", "scan.fetch_decode", "scan.emit", "read.fetch",
        "read.decode_chunk", "write.stage", "write.encode_page",
        "write.commit_group"}) {
    if (json->find(name) != std::string::npos) ++stages;
  }
  EXPECT_GE(stages, 3u) << *json;
}

// ---------------------------------------------------------------------------
// PipelineReport

TEST(PipelineReport, PopulatedByScan) {
  Schema schema({Field{"uid", DataType::Primitive(PhysicalType::kInt64),
                       LogicalType::kPlain, true},
                 Field{"score", DataType::Primitive(PhysicalType::kFloat64),
                       LogicalType::kPlain, false}});
  constexpr size_t kRows = 4096, kRowsPerGroup = 512;
  InMemoryFileSystem fs;
  {
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t r = 0; r < kRows; r += kRowsPerGroup) {
      std::vector<ColumnVector> cols;
      for (const LeafColumn& leaf : schema.leaves()) {
        cols.push_back(ColumnVector::ForLeaf(leaf));
      }
      for (size_t i = 0; i < kRowsPerGroup; ++i) {
        cols[0].AppendInt(static_cast<int64_t>(r + i));
        cols[1].AppendReal(static_cast<double>(r + i));
      }
      groups.push_back(std::move(cols));
    }
    auto f = fs.NewWritableFile("t");
    ASSERT_TRUE(WriteTableFile(f->get(), schema, groups).ok());
  }
  auto reader = TableReader::Open(*fs.NewReadableFile("t"));
  ASSERT_TRUE(reader.ok());

  obs::PipelineReport report;
  auto stream = Scan(reader->get()).Threads(2).Report(&report).Stream();
  ASSERT_TRUE(stream.ok());
  RowBatch batch;
  uint64_t rows = 0, batches = 0;
  for (;;) {
    auto more = (*stream)->Next(&batch);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    rows += batch.num_rows();
    ++batches;
  }
  stream->reset();  // destructor records wall time

  EXPECT_EQ(report.rows.load(), kRows);
  EXPECT_EQ(report.units.load(), kRows / kRowsPerGroup);
  EXPECT_EQ(report.batches.load(), batches);
  EXPECT_GT(report.bytes.load(), 0u);
  EXPECT_GT(report.wall_ns.load(), 0u);
  EXPECT_GT(report.work_ns.load(), 0u);
  // One work_hist sample per coalesced read; a unit (row group) issues
  // at least one.
  EXPECT_GE(report.work_hist.Snapshot().count, report.units.load());
  EXPECT_GT(report.rows_per_sec(), 0.0);

  EXPECT_FALSE(report.ToString().empty());
  std::string json = report.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"work_ns\""), std::string::npos) << json;

  report.Reset();
  EXPECT_EQ(report.rows.load(), 0u);
  EXPECT_EQ(report.wall_ns.load(), 0u);
  EXPECT_EQ(report.work_hist.Snapshot().count, 0u);
}

TEST(PipelineReport, PopulatedByParallelWrite) {
  Schema schema({Field{"v", DataType::Primitive(PhysicalType::kInt64),
                       LogicalType::kPlain, false}});
  constexpr size_t kGroups = 6, kRowsPerGroup = 300;
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < kGroups; ++g) {
    std::vector<ColumnVector> cols;
    for (const LeafColumn& leaf : schema.leaves()) {
      cols.push_back(ColumnVector::ForLeaf(leaf));
    }
    for (size_t i = 0; i < kRowsPerGroup; ++i) {
      cols[0].AppendInt(static_cast<int64_t>(g * kRowsPerGroup + i));
    }
    groups.push_back(std::move(cols));
  }

  InMemoryFileSystem fs;
  obs::PipelineReport report;
  {
    auto f = fs.NewWritableFile("t");
    auto writer = WriteBuilder(schema, f->get())
                      .RowsPerPage(64)
                      .Threads(2)
                      .Report(&report)
                      .Build();
    ASSERT_TRUE(writer.ok());
    for (const auto& g : groups) {
      ASSERT_TRUE((*writer)->WriteRowGroup(g).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  EXPECT_EQ(report.rows.load(), kGroups * kRowsPerGroup);
  EXPECT_EQ(report.units.load(), kGroups);
  EXPECT_GT(report.batches.load(), 0u);  // one per encoded page
  EXPECT_GT(report.bytes.load(), 0u);
  EXPECT_GT(report.wall_ns.load(), 0u);
  EXPECT_GT(report.work_ns.load(), 0u);
  EXPECT_GT(report.prepare_ns.load(), 0u);
  EXPECT_EQ(report.work_hist.Snapshot().count, report.batches.load());
  EXPECT_TRUE(IsValidJson(report.ToJson()));
}

}  // namespace
}  // namespace bullion

// Randomized round-trip and cross-tier property tests for the block
// codec rework (src/encoding/block_codec.h): for every int codec, over
// adversarial value distributions and block sizes,
//   decode(encode(v)) == v
// under every available kernel tier, the encoded bytes are identical
// byte-for-byte across tiers (the tier is an implementation detail,
// never a format variant), and corrupt inputs fail with Status rather
// than crashing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/float16.h"
#include "common/random.h"
#include "encoding/block_codec.h"
#include "encoding/cascade.h"
#include "encoding/cpu_dispatch.h"
#include "encoding/encoding.h"
#include "quant/quantize.h"

namespace bullion {
namespace {

// ---------------------------------------------------------------------------
// Generators: distributions chosen to stress specific kernel paths —
// wide values (width 64 packing), clustered (narrow widths), constant
// runs (RLE / constant), negatives (zigzag / FOR base), and extremes
// (INT64_MIN/MAX overflow edges in sub_base/add_base and zigzag).
// ---------------------------------------------------------------------------

std::vector<int64_t> GenFuzzData(const std::string& kind, size_t n,
                                 uint64_t seed) {
  Random rng(seed);
  std::vector<int64_t> v(n);
  if (kind == "uniform") {
    for (auto& x : v) x = static_cast<int64_t>(rng.Next());
  } else if (kind == "clustered") {
    int64_t base = rng.UniformRange(-1000000, 1000000);
    for (auto& x : v) x = base + rng.UniformRange(0, 255);
  } else if (kind == "constant_runs") {
    size_t i = 0;
    while (i < n) {
      int64_t cur = rng.UniformRange(-50, 50);
      size_t run = 1 + rng.Uniform(64);
      for (size_t k = 0; k < run && i < n; ++k) v[i++] = cur;
    }
  } else if (kind == "negatives") {
    for (auto& x : v) x = -static_cast<int64_t>(rng.Uniform(1u << 30));
  } else if (kind == "extremes") {
    const int64_t pool[] = {0,
                            1,
                            -1,
                            std::numeric_limits<int64_t>::max(),
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max() - 1,
                            std::numeric_limits<int64_t>::min() + 1};
    for (auto& x : v) x = pool[rng.Uniform(7)];
  } else {  // "small"
    for (auto& x : v) x = rng.UniformRange(0, 9);
  }
  return v;
}

const char* kDistributions[] = {"uniform",   "clustered", "constant_runs",
                                "negatives", "extremes",  "small"};

// Sizes straddle the kernel block size (256), the packed miniblock
// size (128), the AVX2 lane width, and the empty/singleton edges.
const size_t kSizes[] = {0, 1, 3, 7, 127, 128, 129, 255, 256, 257, 1021};

const EncodingType kIntCodecs[] = {
    EncodingType::kTrivial,       EncodingType::kVarint,
    EncodingType::kZigZag,        EncodingType::kFixedBitWidth,
    EncodingType::kForDelta,      EncodingType::kDelta,
    EncodingType::kConstant,      EncodingType::kMainlyConstant,
    EncodingType::kRle,           EncodingType::kDictionary,
    EncodingType::kHuffman,       EncodingType::kFastPFor,
    EncodingType::kFastBP128,     EncodingType::kBitShuffle,
    EncodingType::kChunked,
};

std::vector<simd::SimdTier> AvailableTiers() {
  std::vector<simd::SimdTier> tiers = {simd::SimdTier::kScalar,
                                       simd::SimdTier::kSwar};
  if (simd::BestSupportedTier() >= simd::SimdTier::kAvx2) {
    tiers.push_back(simd::SimdTier::kAvx2);
  }
  return tiers;
}

/// Encodes `data` as `type` under `tier`; empty result means the codec
/// rejected the data (precondition like non-negativity) — callers skip.
std::optional<Buffer> EncodeUnder(EncodingType type,
                                  const std::vector<int64_t>& data,
                                  simd::SimdTier tier) {
  simd::ScopedSimdTierCap cap(tier);
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  Status st = EncodeIntBlockAs(type, data, &ctx, &out);
  if (!st.ok()) return std::nullopt;
  return out.Finish();
}

// ---------------------------------------------------------------------------
// Round-trip x cross-tier byte identity.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, RoundTripAllCodecsAllTiersByteIdentical) {
  const std::vector<simd::SimdTier> tiers = AvailableTiers();
  uint64_t seed = 0xB10C;
  for (EncodingType type : kIntCodecs) {
    for (const char* kind : kDistributions) {
      for (size_t n : kSizes) {
        std::vector<int64_t> data = GenFuzzData(kind, n, seed++);
        std::optional<Buffer> reference =
            EncodeUnder(type, data, simd::SimdTier::kScalar);
        if (!reference.has_value()) continue;  // codec rejected this data
        for (simd::SimdTier tier : tiers) {
          SCOPED_TRACE(std::string(EncodingTypeName(type)) + "/" + kind +
                       "/n=" + std::to_string(n) + "/tier=" +
                       std::string(simd::SimdTierName(tier)));
          std::optional<Buffer> encoded = EncodeUnder(type, data, tier);
          ASSERT_TRUE(encoded.has_value());
          // On-disk bytes must not depend on the kernel tier.
          ASSERT_EQ(reference->size(), encoded->size());
          ASSERT_TRUE(reference->AsSlice() == encoded->AsSlice());

          simd::ScopedSimdTierCap cap(tier);
          std::vector<int64_t> decoded;
          SliceReader reader(encoded->AsSlice());
          ASSERT_TRUE(DecodeIntBlock(&reader, &decoded).ok());
          ASSERT_EQ(data, decoded);
        }
      }
    }
  }
}

TEST(CodecFuzzTest, DecodeIntoMatchesVectorOverload) {
  const std::vector<simd::SimdTier> tiers = AvailableTiers();
  uint64_t seed = 0x1D10;
  for (EncodingType type : kIntCodecs) {
    std::vector<int64_t> data = GenFuzzData("clustered", 777, seed++);
    std::optional<Buffer> encoded =
        EncodeUnder(type, data, simd::SimdTier::kScalar);
    if (!encoded.has_value()) continue;
    for (simd::SimdTier tier : tiers) {
      SCOPED_TRACE(std::string(EncodingTypeName(type)) + "/tier=" +
                   std::string(simd::SimdTierName(tier)));
      simd::ScopedSimdTierCap cap(tier);
      std::vector<int64_t> dst(data.size(), -99);
      SliceReader reader(encoded->AsSlice());
      ASSERT_TRUE(DecodeIntBlockInto(&reader, dst).ok());
      ASSERT_EQ(data, dst);
    }
  }
}

TEST(CodecFuzzTest, DecodeIntoRejectsCountMismatch) {
  std::vector<int64_t> data = GenFuzzData("clustered", 100, 1);
  std::optional<Buffer> encoded =
      EncodeUnder(EncodingType::kForDelta, data, simd::SimdTier::kScalar);
  ASSERT_TRUE(encoded.has_value());
  std::vector<int64_t> wrong(99);
  SliceReader reader(encoded->AsSlice());
  EXPECT_FALSE(DecodeIntBlockInto(&reader, wrong).ok());
}

TEST(CodecFuzzTest, DecodeAppendExtendsExistingValues) {
  std::vector<int64_t> data = GenFuzzData("negatives", 300, 2);
  std::optional<Buffer> encoded =
      EncodeUnder(EncodingType::kZigZag, data, simd::SimdTier::kScalar);
  ASSERT_TRUE(encoded.has_value());
  std::vector<int64_t> dst = {5, 6, 7};
  SliceReader reader(encoded->AsSlice());
  ASSERT_TRUE(DecodeIntBlockAppend(&reader, &dst).ok());
  ASSERT_EQ(dst.size(), 303u);
  EXPECT_EQ(dst[0], 5);
  EXPECT_EQ(dst[2], 7);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), dst.begin() + 3));
}

// ---------------------------------------------------------------------------
// Corrupt-input fuzz: decoding must fail cleanly, never crash or read
// out of bounds, under every tier.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, TruncatedBlocksFailCleanly) {
  const std::vector<simd::SimdTier> tiers = AvailableTiers();
  for (EncodingType type : kIntCodecs) {
    std::vector<int64_t> data = GenFuzzData("clustered", 200, 3);
    std::optional<Buffer> encoded =
        EncodeUnder(type, data, simd::SimdTier::kScalar);
    if (!encoded.has_value()) continue;
    Slice full = encoded->AsSlice();
    for (simd::SimdTier tier : tiers) {
      simd::ScopedSimdTierCap cap(tier);
      for (size_t cut = 0; cut < full.size();
           cut += std::max<size_t>(1, full.size() / 23)) {
        std::vector<int64_t> decoded;
        SliceReader reader(full.SubSlice(0, cut));
        // Either a clean Status error or (for cuts past the meaningful
        // payload) success; must not crash.
        DecodeIntBlock(&reader, &decoded).ok();
      }
    }
  }
}

TEST(CodecFuzzTest, ByteFlippedBlocksFailCleanly) {
  const std::vector<simd::SimdTier> tiers = AvailableTiers();
  Random rng(99);
  for (EncodingType type : kIntCodecs) {
    std::vector<int64_t> data = GenFuzzData("small", 150, 4);
    std::optional<Buffer> encoded =
        EncodeUnder(type, data, simd::SimdTier::kScalar);
    if (!encoded.has_value()) continue;
    Slice full = encoded->AsSlice();
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<uint8_t> corrupt(full.data(), full.data() + full.size());
      corrupt[rng.Uniform(corrupt.size())] ^=
          static_cast<uint8_t>(1u << rng.Uniform(8));
      for (simd::SimdTier tier : tiers) {
        simd::ScopedSimdTierCap cap(tier);
        std::vector<int64_t> decoded;
        SliceReader reader(Slice(corrupt.data(), corrupt.size()));
        DecodeIntBlock(&reader, &decoded).ok();  // must not crash
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Float16 kernels: quantized bits identical across tiers, including
// NaN payloads, infinities, denormals, and rounding edges.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, Float16BitsIdenticalAcrossTiers) {
  std::vector<float> data;
  Random rng(7);
  for (int i = 0; i < 4099; ++i) {
    data.push_back(static_cast<float>(rng.NextGaussian() * 1e3));
  }
  const float specials[] = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      -std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      65504.0f,   // max finite half
      65520.0f,   // rounds to half inf
      6.1e-5f,    // near half denormal boundary
      5.96e-8f,   // half denorm_min neighborhood
  };
  data.insert(data.end(), std::begin(specials), std::end(specials));

  std::vector<int64_t> ref_bits;
  std::vector<float> ref_back;
  {
    simd::ScopedSimdTierCap cap(simd::SimdTier::kScalar);
    ref_bits = QuantizeFloats(data, FloatPrecision::kFp16);
    ref_back = DequantizeFloats(ref_bits, FloatPrecision::kFp16);
  }
  for (simd::SimdTier tier : AvailableTiers()) {
    SCOPED_TRACE(std::string(simd::SimdTierName(tier)));
    simd::ScopedSimdTierCap cap(tier);
    std::vector<int64_t> bits = QuantizeFloats(data, FloatPrecision::kFp16);
    ASSERT_EQ(ref_bits, bits);
    std::vector<float> back = DequantizeFloats(bits, FloatPrecision::kFp16);
    ASSERT_EQ(back.size(), ref_back.size());
    for (size_t i = 0; i < back.size(); ++i) {
      // NaNs compare unequal; require bit equality instead.
      uint32_t a, b;
      std::memcpy(&a, &back[i], 4);
      std::memcpy(&b, &ref_back[i], 4);
      ASSERT_EQ(a, b) << "index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Raw kernel properties: pack/unpack inverse at every width, and the
// tier override machinery itself.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, PackUnpackInverseAtEveryWidth) {
  Random rng(13);
  const std::vector<simd::SimdTier> tiers = AvailableTiers();
  for (int width = 0; width <= 64; ++width) {
    const size_t n = blockcodec::kBlockValues + 13;  // non-lane-multiple
    uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
    std::vector<uint64_t> values(n);
    for (auto& x : values) x = rng.Next() & mask;
    const size_t bytes = (n * static_cast<size_t>(width) + 7) / 8;

    std::vector<uint8_t> ref_packed(bytes, 0);
    blockcodec::KernelsForTier(simd::SimdTier::kScalar)
        .pack_bits(values.data(), n, width, ref_packed.data());

    for (simd::SimdTier tier : tiers) {
      SCOPED_TRACE("width=" + std::to_string(width) + " tier=" +
                   std::string(simd::SimdTierName(tier)));
      const blockcodec::Kernels& k = blockcodec::KernelsForTier(tier);
      std::vector<uint8_t> packed(bytes, 0);
      k.pack_bits(values.data(), n, width, packed.data());
      ASSERT_EQ(ref_packed, packed);
      std::vector<uint64_t> unpacked(n, ~0ull);
      k.unpack_bits(packed.data(), packed.size(), n, width, unpacked.data());
      ASSERT_EQ(values, unpacked);
    }
  }
}

TEST(CodecFuzzTest, ScopedTierCapRestoresActiveTier) {
  simd::SimdTier before = simd::ActiveSimdTier();
  {
    simd::ScopedSimdTierCap cap(simd::SimdTier::kScalar);
    EXPECT_EQ(simd::ActiveSimdTier(), simd::SimdTier::kScalar);
  }
  EXPECT_EQ(simd::ActiveSimdTier(), before);
}

}  // namespace
}  // namespace bullion

// Round-trip and property tests for every codec in the cascading
// encoding framework (Table 2 catalog).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "common/random.h"
#include "encoding/cascade.h"
#include "encoding/encoding.h"
#include "encoding/stats.h"

namespace bullion {
namespace {

// ---------------------------------------------------------------------------
// Data generators for the parameterized round-trip sweeps.
// ---------------------------------------------------------------------------

std::vector<int64_t> GenIntData(const std::string& kind, size_t n,
                                uint64_t seed) {
  Random rng(seed);
  std::vector<int64_t> v(n);
  if (kind == "constant") {
    std::fill(v.begin(), v.end(), 42);
  } else if (kind == "mainly_constant") {
    for (auto& x : v) x = rng.Bernoulli(0.05) ? rng.UniformRange(0, 1000) : 7;
  } else if (kind == "sorted") {
    int64_t cur = -500;
    for (auto& x : v) {
      cur += rng.UniformRange(0, 10);
      x = cur;
    }
  } else if (kind == "runs") {
    int64_t cur = 0;
    size_t i = 0;
    while (i < n) {
      cur = rng.UniformRange(-100, 100);
      size_t run = 1 + rng.Uniform(20);
      for (size_t k = 0; k < run && i < n; ++k) v[i++] = cur;
    }
  } else if (kind == "low_cardinality") {
    for (auto& x : v) x = rng.UniformRange(0, 15);
  } else if (kind == "zipf_ids") {
    for (auto& x : v) {
      double u = rng.NextDouble();
      x = static_cast<int64_t>(1000000.0 * std::pow(u, 4.0));
    }
  } else if (kind == "uniform_small") {
    for (auto& x : v) x = rng.UniformRange(0, 1000);
  } else if (kind == "uniform_wide") {
    for (auto& x : v) x = static_cast<int64_t>(rng.Next());
  } else if (kind == "negatives") {
    for (auto& x : v) x = rng.UniformRange(-1000000, 1000000);
  } else if (kind == "timestamps") {
    int64_t t = 1700000000000000;
    for (auto& x : v) {
      t += rng.UniformRange(1, 1000);
      x = t;
    }
  } else if (kind == "extremes") {
    for (size_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0: v[i] = INT64_MIN; break;
        case 1: v[i] = INT64_MAX; break;
        case 2: v[i] = 0; break;
        case 3: v[i] = -1; break;
      }
    }
  }
  return v;
}

// All int encodings that should round-trip any int64 input.
const EncodingType kUniversalIntEncodings[] = {
    EncodingType::kTrivial,    EncodingType::kZigZag,
    EncodingType::kDelta,      EncodingType::kForDelta,
    EncodingType::kRle,        EncodingType::kDictionary,
    EncodingType::kFastPFor,   EncodingType::kFastBP128,
    EncodingType::kBitShuffle, EncodingType::kChunked,
    EncodingType::kMainlyConstant,
};

struct IntCase {
  std::string kind;
  size_t n;
};

class IntRoundTrip : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntRoundTrip, AllUniversalEncodings) {
  const IntCase& c = GetParam();
  std::vector<int64_t> data = GenIntData(c.kind, c.n, 1234);
  CascadeOptions opts;
  for (EncodingType t : kUniversalIntEncodings) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    Status st = EncodeIntBlockAs(t, data, &ctx, &out);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    Buffer buf = out.Finish();
    std::vector<int64_t> decoded;
    SliceReader reader(buf.AsSlice());
    st = DecodeIntBlock(&reader, &decoded);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    EXPECT_EQ(decoded, data) << EncodingTypeName(t) << " on " << c.kind;
    EXPECT_EQ(reader.remaining(), 0u)
        << EncodingTypeName(t) << " left trailing bytes on " << c.kind;
  }
}

TEST_P(IntRoundTrip, CascadeSelectsAndRoundTrips) {
  const IntCase& c = GetParam();
  std::vector<int64_t> data = GenIntData(c.kind, c.n, 99);
  CascadeOptions opts;
  SelectionDecision decision;
  auto res = EncodeInt64ColumnWithDecision(data, opts, &decision);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeInt64Column(res->AsSlice(), &decoded).ok());
  EXPECT_EQ(decoded, data) << "cascade chose "
                           << EncodingTypeName(decision.chosen);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, IntRoundTrip,
    ::testing::Values(
        IntCase{"constant", 1000}, IntCase{"mainly_constant", 1000},
        IntCase{"sorted", 1000}, IntCase{"runs", 1000},
        IntCase{"low_cardinality", 1000}, IntCase{"zipf_ids", 1000},
        IntCase{"uniform_small", 1000}, IntCase{"uniform_wide", 1000},
        IntCase{"negatives", 1000}, IntCase{"timestamps", 1000},
        IntCase{"extremes", 64}, IntCase{"uniform_small", 1},
        IntCase{"sorted", 2}, IntCase{"runs", 127}, IntCase{"runs", 128},
        IntCase{"runs", 129}, IntCase{"uniform_small", 4096}),
    [](const ::testing::TestParamInfo<IntCase>& info) {
      return info.param.kind + "_" + std::to_string(info.param.n);
    });

// Encodings restricted to non-negative inputs.
TEST(IntEncodings, NonNegativeOnlyEncodings) {
  std::vector<int64_t> ok = {0, 1, 127, 128, 300000, 1ll << 40};
  std::vector<int64_t> bad = {5, -1, 3};
  CascadeOptions opts;
  for (EncodingType t :
       {EncodingType::kVarint, EncodingType::kFixedBitWidth}) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    ASSERT_TRUE(EncodeIntBlockAs(t, ok, &ctx, &out).ok());
    Buffer buf = out.Finish();
    std::vector<int64_t> decoded;
    SliceReader reader(buf.AsSlice());
    ASSERT_TRUE(DecodeIntBlock(&reader, &decoded).ok());
    EXPECT_EQ(decoded, ok) << EncodingTypeName(t);

    BufferBuilder out2;
    CascadeContext ctx2(opts, 0);
    EXPECT_FALSE(EncodeIntBlockAs(t, bad, &ctx2, &out2).ok())
        << EncodingTypeName(t) << " must reject negatives";
  }
}

TEST(IntEncodings, ConstantRejectsNonConstant) {
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  std::vector<int64_t> v = {1, 2};
  EXPECT_FALSE(EncodeIntBlockAs(EncodingType::kConstant, v, &ctx, &out).ok());
}

TEST(IntEncodings, HuffmanSmallAlphabet) {
  Random rng(7);
  std::vector<int64_t> v(5000);
  for (auto& x : v) x = rng.UniformRange(-8, 8);
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  ASSERT_TRUE(EncodeIntBlockAs(EncodingType::kHuffman, v, &ctx, &out).ok());
  Buffer buf = out.Finish();
  std::vector<int64_t> decoded;
  SliceReader reader(buf.AsSlice());
  ASSERT_TRUE(DecodeIntBlock(&reader, &decoded).ok());
  EXPECT_EQ(decoded, v);
  // Entropy ~ log2(17) < 8 bits/value: should beat trivial hard.
  EXPECT_LT(buf.size(), v.size() * 2);
}

TEST(IntEncodings, HuffmanRejectsHugeAlphabet) {
  std::vector<int64_t> v(10000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i * 7919);
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  EXPECT_FALSE(EncodeIntBlockAs(EncodingType::kHuffman, v, &ctx, &out).ok());
}

TEST(IntEncodings, EmptyInput) {
  std::vector<int64_t> v;
  CascadeOptions opts;
  for (EncodingType t : kUniversalIntEncodings) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    Status st = EncodeIntBlockAs(t, v, &ctx, &out);
    if (!st.ok()) continue;  // some codecs may reject empty; that is fine
    Buffer buf = out.Finish();
    std::vector<int64_t> decoded = {1, 2, 3};
    SliceReader reader(buf.AsSlice());
    ASSERT_TRUE(DecodeIntBlock(&reader, &decoded).ok())
        << EncodingTypeName(t);
    EXPECT_TRUE(decoded.empty()) << EncodingTypeName(t);
  }
}

TEST(IntEncodings, CompressionRatiosMakeSense) {
  // Low-cardinality data must compress well under dictionary-ish
  // encodings; the cascade must do at least as well as FixedBitWidth.
  Random rng(5);
  std::vector<int64_t> v(100000);
  for (auto& x : v) x = rng.UniformRange(0, 7);
  auto res = EncodeInt64Column(v);
  ASSERT_TRUE(res.ok());
  // 3 bits/value = 37.5 KB; allow some head-room.
  EXPECT_LT(res->size(), 60000u);
}

// ---------------------------------------------------------------------------
// Doubles.
// ---------------------------------------------------------------------------

std::vector<double> GenDoubleData(const std::string& kind, size_t n,
                                  uint64_t seed) {
  Random rng(seed);
  std::vector<double> v(n);
  if (kind == "decimal2") {
    for (auto& x : v) x = rng.UniformRange(-99999, 99999) / 100.0;
  } else if (kind == "embeddings") {
    for (auto& x : v) x = std::tanh(rng.NextGaussian());
  } else if (kind == "slowly_changing") {
    double cur = 100.0;
    for (auto& x : v) {
      cur += rng.NextGaussian() * 0.01;
      x = cur;
    }
  } else if (kind == "constantish") {
    for (auto& x : v) x = rng.Bernoulli(0.01) ? rng.NextDouble() : 3.14;
  } else if (kind == "specials") {
    for (size_t i = 0; i < n; ++i) {
      switch (i % 5) {
        case 0: v[i] = 0.0; break;
        case 1: v[i] = -0.0; break;
        case 2: v[i] = std::numeric_limits<double>::infinity(); break;
        case 3: v[i] = -std::numeric_limits<double>::infinity(); break;
        case 4: v[i] = 1e300; break;
      }
    }
  }
  return v;
}

const EncodingType kDoubleEncodings[] = {
    EncodingType::kTrivial,       EncodingType::kGorilla,
    EncodingType::kChimp,         EncodingType::kPseudodecimal,
    EncodingType::kAlp,           EncodingType::kChunked,
    EncodingType::kBitShuffle,
};

class DoubleRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DoubleRoundTrip, AllEncodings) {
  std::vector<double> data = GenDoubleData(GetParam(), 2000, 77);
  CascadeOptions opts;
  for (EncodingType t : kDoubleEncodings) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    Status st = EncodeDoubleBlockAs(t, data, &ctx, &out);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    Buffer buf = out.Finish();
    std::vector<double> decoded;
    SliceReader reader(buf.AsSlice());
    st = DecodeDoubleBlock(&reader, &decoded);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    ASSERT_EQ(decoded.size(), data.size()) << EncodingTypeName(t);
    for (size_t i = 0; i < data.size(); ++i) {
      uint64_t a, b;
      std::memcpy(&a, &data[i], 8);
      std::memcpy(&b, &decoded[i], 8);
      ASSERT_EQ(a, b) << EncodingTypeName(t) << " bit-exact mismatch at " << i;
    }
    EXPECT_EQ(reader.remaining(), 0u) << EncodingTypeName(t);
  }
}

TEST_P(DoubleRoundTrip, Cascade) {
  std::vector<double> data = GenDoubleData(GetParam(), 2000, 78);
  auto res = EncodeDoubleColumn(data);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeDoubleColumn(res->AsSlice(), &decoded).ok());
  ASSERT_EQ(decoded.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    uint64_t a, b;
    std::memcpy(&a, &data[i], 8);
    std::memcpy(&b, &decoded[i], 8);
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, DoubleRoundTrip,
                         ::testing::Values("decimal2", "embeddings",
                                           "slowly_changing", "constantish",
                                           "specials"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(DoubleEncodings, DecimalDataCompressesWithAlp) {
  std::vector<double> data = GenDoubleData("decimal2", 50000, 3);
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  ASSERT_TRUE(EncodeDoubleBlockAs(EncodingType::kAlp, data, &ctx, &out).ok());
  // 2-decimal values in (-1000,1000): mantissas fit ~24 bits << 64.
  EXPECT_LT(out.size(), data.size() * 4);
}

// ---------------------------------------------------------------------------
// Strings.
// ---------------------------------------------------------------------------

std::vector<std::string> GenStringData(const std::string& kind, size_t n,
                                       uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> v;
  v.reserve(n);
  if (kind == "urls") {
    const char* hosts[] = {"example.com", "news.site.org", "shop.example.io"};
    for (size_t i = 0; i < n; ++i) {
      v.push_back("https://" + std::string(hosts[rng.Uniform(3)]) +
                  "/path/item" + std::to_string(rng.Uniform(100000)));
    }
  } else if (kind == "low_cardinality") {
    const char* vals[] = {"beta", "experimental", "active", "deprecated"};
    for (size_t i = 0; i < n; ++i) v.push_back(vals[rng.Uniform(4)]);
  } else if (kind == "random_short") {
    for (size_t i = 0; i < n; ++i) {
      std::string s;
      size_t len = rng.Uniform(12);
      for (size_t k = 0; k < len; ++k) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      v.push_back(s);
    }
  } else if (kind == "with_empties") {
    for (size_t i = 0; i < n; ++i) {
      v.push_back(i % 3 == 0 ? "" : "x" + std::to_string(i));
    }
  } else if (kind == "binary_bytes") {
    for (size_t i = 0; i < n; ++i) {
      std::string s;
      size_t len = rng.Uniform(64);
      for (size_t k = 0; k < len; ++k) {
        s.push_back(static_cast<char>(rng.Uniform(256)));
      }
      v.push_back(s);
    }
  }
  return v;
}

const EncodingType kStringEncodings[] = {
    EncodingType::kStringTrivial, EncodingType::kStringDict,
    EncodingType::kFsst, EncodingType::kChunked};

class StringRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(StringRoundTrip, AllEncodings) {
  std::vector<std::string> data = GenStringData(GetParam(), 500, 21);
  CascadeOptions opts;
  for (EncodingType t : kStringEncodings) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    Status st = EncodeStringBlockAs(t, data, &ctx, &out);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    Buffer buf = out.Finish();
    std::vector<std::string> decoded;
    SliceReader reader(buf.AsSlice());
    st = DecodeStringBlock(&reader, &decoded);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    EXPECT_EQ(decoded, data) << EncodingTypeName(t);
    EXPECT_EQ(reader.remaining(), 0u) << EncodingTypeName(t);
  }
}

TEST_P(StringRoundTrip, Cascade) {
  std::vector<std::string> data = GenStringData(GetParam(), 500, 22);
  auto res = EncodeStringColumn(data);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<std::string> decoded;
  ASSERT_TRUE(DecodeStringColumn(res->AsSlice(), &decoded).ok());
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Kinds, StringRoundTrip,
                         ::testing::Values("urls", "low_cardinality",
                                           "random_short", "with_empties",
                                           "binary_bytes"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(StringEncodings, FsstCompressesUrls) {
  std::vector<std::string> data = GenStringData("urls", 5000, 11);
  size_t raw = 0;
  for (const auto& s : data) raw += s.size();
  CascadeOptions opts;
  CascadeContext ctx(opts, 0);
  BufferBuilder out;
  ASSERT_TRUE(EncodeStringBlockAs(EncodingType::kFsst, data, &ctx, &out).ok());
  EXPECT_LT(out.size(), raw) << "FSST should shrink structured URLs";
}

// ---------------------------------------------------------------------------
// Bools.
// ---------------------------------------------------------------------------

std::vector<uint8_t> GenBoolData(const std::string& kind, size_t n,
                                 uint64_t seed) {
  Random rng(seed);
  std::vector<uint8_t> v(n);
  if (kind == "sparse") {
    for (auto& x : v) x = rng.Bernoulli(0.01) ? 1 : 0;
  } else if (kind == "dense") {
    for (auto& x : v) x = rng.Bernoulli(0.99) ? 1 : 0;
  } else if (kind == "balanced") {
    for (auto& x : v) x = rng.Bernoulli(0.5) ? 1 : 0;
  } else if (kind == "runs") {
    uint8_t cur = 0;
    size_t i = 0;
    while (i < n) {
      size_t run = 1 + rng.Uniform(100);
      for (size_t k = 0; k < run && i < n; ++k) v[i++] = cur;
      cur = cur ? 0 : 1;
    }
  } else if (kind == "all_zero") {
    // already zero
  } else if (kind == "all_one") {
    std::fill(v.begin(), v.end(), 1);
  }
  return v;
}

const EncodingType kBoolEncodings[] = {
    EncodingType::kTrivial, EncodingType::kSparseBool, EncodingType::kBoolRle,
    EncodingType::kRoaring};

class BoolRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(BoolRoundTrip, AllEncodings) {
  std::vector<uint8_t> data = GenBoolData(GetParam(), 100000, 31);
  CascadeOptions opts;
  for (EncodingType t : kBoolEncodings) {
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    Status st = EncodeBoolBlockAs(t, data, &ctx, &out);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    Buffer buf = out.Finish();
    std::vector<uint8_t> decoded;
    SliceReader reader(buf.AsSlice());
    st = DecodeBoolBlock(&reader, &decoded);
    ASSERT_TRUE(st.ok()) << EncodingTypeName(t) << ": " << st.ToString();
    EXPECT_EQ(decoded, data) << EncodingTypeName(t);
  }
}

TEST_P(BoolRoundTrip, Cascade) {
  std::vector<uint8_t> data = GenBoolData(GetParam(), 50000, 32);
  auto res = EncodeBoolColumn(data);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(DecodeBoolColumn(res->AsSlice(), &decoded).ok());
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BoolRoundTrip,
                         ::testing::Values("sparse", "dense", "balanced",
                                           "runs", "all_zero", "all_one"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(BoolEncodings, SparseBeatsTrivialOnSparseData) {
  std::vector<uint8_t> data = GenBoolData("sparse", 100000, 41);
  CascadeOptions opts;
  CascadeContext c1(opts, 0), c2(opts, 0);
  BufferBuilder sparse, trivial;
  ASSERT_TRUE(
      EncodeBoolBlockAs(EncodingType::kSparseBool, data, &c1, &sparse).ok());
  ASSERT_TRUE(
      EncodeBoolBlockAs(EncodingType::kTrivial, data, &c2, &trivial).ok());
  EXPECT_LT(sparse.size(), trivial.size());
}

// ---------------------------------------------------------------------------
// Nullable composition.
// ---------------------------------------------------------------------------

TEST(Nullable, RoundTripWithNulls) {
  Random rng(55);
  size_t n = 5000;
  std::vector<int64_t> values(n);
  std::vector<uint8_t> validity(n);
  for (size_t i = 0; i < n; ++i) {
    validity[i] = rng.Bernoulli(0.7) ? 1 : 0;
    values[i] = validity[i] ? rng.UniformRange(0, 100) : 0;
  }
  auto res = EncodeNullableInt64Column(values, validity);
  ASSERT_TRUE(res.ok());
  std::vector<int64_t> out_values;
  std::vector<uint8_t> out_validity;
  ASSERT_TRUE(DecodeNullableInt64Column(res->AsSlice(), -1, &out_values,
                                        &out_validity)
                  .ok());
  ASSERT_EQ(out_values.size(), n);
  EXPECT_EQ(out_validity, validity);
  for (size_t i = 0; i < n; ++i) {
    if (validity[i]) {
      EXPECT_EQ(out_values[i], values[i]);
    } else {
      EXPECT_EQ(out_values[i], -1);
    }
  }
}

// ---------------------------------------------------------------------------
// Cascade behaviour properties.
// ---------------------------------------------------------------------------

TEST(Cascade, DepthZeroStillRoundTrips) {
  std::vector<int64_t> data = GenIntData("runs", 3000, 8);
  CascadeOptions opts;
  opts.max_depth = 0;
  auto res = EncodeInt64Column(data, opts);
  ASSERT_TRUE(res.ok());
  std::vector<int64_t> decoded;
  ASSERT_TRUE(DecodeInt64Column(res->AsSlice(), &decoded).ok());
  EXPECT_EQ(decoded, data);
}

TEST(Cascade, DeeperRecursionNeverMuchWorse) {
  std::vector<int64_t> data = GenIntData("runs", 50000, 9);
  std::vector<size_t> sizes;
  for (int depth = 0; depth <= 3; ++depth) {
    CascadeOptions opts;
    opts.max_depth = depth;
    auto res = EncodeInt64Column(data, opts);
    ASSERT_TRUE(res.ok());
    std::vector<int64_t> decoded;
    ASSERT_TRUE(DecodeInt64Column(res->AsSlice(), &decoded).ok());
    ASSERT_EQ(decoded, data);
    sizes.push_back(res->size());
  }
  // Depth 2 should not be larger than depth 0 by more than noise.
  EXPECT_LE(sizes[2], sizes[0] + 64);
}

TEST(Cascade, AllowlistRestrictsSelection) {
  std::vector<int64_t> data = GenIntData("low_cardinality", 2000, 10);
  CascadeOptions opts;
  opts.allowed = {EncodingType::kTrivial};
  SelectionDecision decision;
  auto res = EncodeInt64ColumnWithDecision(data, opts, &decision);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(decision.chosen, EncodingType::kTrivial);
}

TEST(Cascade, DecodeWeightSteersAwayFromExpensiveCodecs) {
  std::vector<int64_t> data = GenIntData("low_cardinality", 4000, 12);
  CascadeOptions size_only;
  size_only.w_size = 1.0;
  CascadeOptions decode_heavy;
  decode_heavy.w_size = 0.01;
  decode_heavy.w_decode = 1000.0;
  SelectionDecision d1, d2;
  ASSERT_TRUE(EncodeInt64ColumnWithDecision(data, size_only, &d1).ok());
  ASSERT_TRUE(EncodeInt64ColumnWithDecision(data, decode_heavy, &d2).ok());
  EncodingCost c1 = GetEncodingCost(d1.chosen);
  EncodingCost c2 = GetEncodingCost(d2.chosen);
  EXPECT_LE(c2.decode, c1.decode + 1e-9)
      << "decode-weighted selection picked a slower decoder: "
      << EncodingTypeName(d2.chosen) << " vs " << EncodingTypeName(d1.chosen);
}

TEST(Cascade, PeekEncodingType) {
  std::vector<int64_t> data(100, 5);
  auto res = EncodeInt64Column(data);
  ASSERT_TRUE(res.ok());
  auto peek = PeekEncodingType(res->AsSlice());
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(*peek, EncodingType::kConstant);
}

// Statistics sanity.
TEST(Stats, IntStatsBasics) {
  std::vector<int64_t> v = {3, 3, 3, 7, 7, -1};
  IntStats s = ComputeIntStats(v);
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.min, -1);
  EXPECT_EQ(s.max, 7);
  EXPECT_EQ(s.run_count, 3u);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.top_frequency, 3u);
  EXPECT_EQ(s.top_value, 3);
  EXPECT_FALSE(s.sorted_non_decreasing);
  EXPECT_FALSE(s.non_negative);
}

TEST(Stats, BoolStats) {
  std::vector<uint8_t> v = {0, 0, 1, 1, 1, 0};
  BoolStats s = ComputeBoolStats(v);
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.set_count, 3u);
  EXPECT_EQ(s.run_count, 3u);
}

}  // namespace
}  // namespace bullion

// Dataset-evolution tests: live append (including nullable-column
// schema evolution with read-side null back-fill), deletion-aware
// shard compaction + GC, manifest v2 publishing, and the headline
// correctness claim — write → append → delete ≥30% → compact → scan
// yields exactly the surviving rows, with compacted shard files
// byte-identical to a serial rebuild at any thread count, and a warm
// DecodedChunkCache never serving pre-compaction chunks.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

Schema MakeBaseSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, /*deletable=*/true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  return Schema(std::move(fields));
}

/// Base schema + a nullable trailing label column (schema evolution).
Schema MakeEvolvedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, /*deletable=*/true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  fields.push_back({"label", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, /*deletable=*/false,
                    /*nullable=*/true});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeData(const Schema& schema, size_t rows,
                                   uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window;
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(seed * 1000000 + r));
    cols[1].AppendReal(rng.NextDouble());
    if (window.empty() || rng.Bernoulli(0.3)) {
      window.insert(window.begin(), rng.UniformRange(0, 99));
      if (window.size() > 6) window.pop_back();
    }
    cols[2].AppendIntList(window);
    for (size_t c = 3; c < cols.size(); ++c) {
      cols[c].AppendInt(static_cast<int64_t>(r % 7));
    }
  }
  return cols;
}

ShardManifest WriteDataset(InMemoryFileSystem* fs, const Schema& schema,
                           const std::vector<ColumnVector>& data,
                           const std::string& base, uint32_t rows_per_group,
                           uint64_t rows_per_shard) {
  ShardedWriterOptions opts;
  opts.rows_per_group = rows_per_group;
  opts.target_rows_per_shard = rows_per_shard;
  opts.base_name = base;
  opts.writer.rows_per_page = 32;
  ShardedTableWriter writer(schema, opts, [fs](const std::string& name) {
    return fs->NewWritableFile(name);
  });
  EXPECT_TRUE(writer.Append(data).ok());
  return *writer.Finish();
}

Result<std::unique_ptr<ShardedTableReader>> OpenDataset(
    InMemoryFileSystem* fs, const ShardManifest& manifest) {
  return ShardedTableReader::Open(manifest, [fs](const std::string& n) {
    return fs->NewReadableFile(n);
  });
}

/// Deletes `rows` (shard-local row ids) in place from shard file `name`.
void DeleteShardRows(InMemoryFileSystem* fs, const std::string& name,
                     const std::vector<uint64_t>& rows) {
  auto reader = *TableReader::Open(*fs->NewReadableFile(name));
  auto rf = *fs->NewReadableFile(name);
  auto uf = *fs->OpenForUpdate(name);
  DeleteExecutor exec(rf.get(), uf.get(), reader->footer());
  auto report = exec.DeleteRows(rows, ComplianceLevel::kLevel2);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->rows_deleted, rows.size());
}

std::vector<uint8_t> ReadAllBytes(InMemoryFileSystem* fs,
                                  const std::string& name) {
  auto file = *fs->NewReadableFile(name);
  uint64_t size = *file->Size();
  Buffer buf;
  EXPECT_TRUE(file->Read(0, size, &buf).ok());
  return std::vector<uint8_t>(buf.data(), buf.data() + buf.size());
}

// -------------------------------------------------------------- append

TEST(DatasetAppender, AppendsShardsAndBumpsGeneration) {
  InMemoryFileSystem fs;
  Schema schema = MakeBaseSchema();
  auto first = MakeData(schema, 500, 1);
  ShardManifest base = WriteDataset(&fs, schema, first, "t", 100, 200);
  ASSERT_EQ(base.num_shards(), 3u);
  EXPECT_EQ(base.generation(), 0u);

  auto appender = DatasetAppender::Open(
      base, schema, [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); });
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  auto second = MakeData(schema, 300, 2);
  ASSERT_TRUE((*appender)->Append(second).ok());
  auto updated = (*appender)->Finish();
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  EXPECT_EQ(updated->generation(), 1u);
  EXPECT_EQ(updated->total_rows(), 800u);
  ASSERT_GT(updated->num_shards(), base.num_shards());
  // Base shards are untouched; new shards continue the numbering.
  for (size_t s = 0; s < base.num_shards(); ++s) {
    EXPECT_EQ(updated->shard(s), base.shard(s));
  }
  EXPECT_EQ(updated->shard(base.num_shards()).name, "t.shard-00003");

  // Scan of the evolved dataset == both batches concatenated.
  auto ds = OpenDataset(&fs, *updated);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  for (size_t threads : {1, 4}) {
    auto scan = DatasetScanBuilder(ds->get()).Threads(threads).Scan();
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->num_rows(), 800u);
    for (size_t c = 0; c < first.size(); ++c) {
      ColumnVector expect = first[c];
      expect.AppendAllFrom(second[c]);
      EXPECT_EQ(*scan->ConcatColumn(c), expect)
          << "column " << c << " threads " << threads;
    }
  }
}

TEST(DatasetAppender, EmptyDatasetNeedsSchemaAndThenWorks) {
  InMemoryFileSystem fs;
  ShardManifest empty;
  auto no_schema = DatasetAppender::Open(
      empty, Schema(),
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); });
  EXPECT_FALSE(no_schema.ok());

  Schema schema = MakeBaseSchema();
  DatasetAppendOptions opts;
  opts.writer.rows_per_group = 50;
  opts.writer.target_rows_per_shard = 100;
  opts.writer.writer.rows_per_page = 16;
  opts.base_name = "fresh";
  auto appender = DatasetAppender::Open(
      empty, schema,
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); }, opts);
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  ASSERT_TRUE((*appender)->Append(MakeData(schema, 150, 3)).ok());
  auto manifest = (*appender)->Finish();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->generation(), 1u);
  EXPECT_EQ(manifest->total_rows(), 150u);
  EXPECT_EQ(manifest->shard(0).name, "fresh.shard-00000");
}

// ---------------------------------------------------- schema evolution

TEST(SchemaEvolution, CheckAppendSchemaRules) {
  Schema base = MakeBaseSchema();
  Schema evolved = MakeEvolvedSchema();
  EXPECT_TRUE(CheckAppendSchema(base, base).ok());       // identical
  EXPECT_TRUE(CheckAppendSchema(base, evolved).ok());    // +nullable
  EXPECT_FALSE(CheckAppendSchema(evolved, base).ok());   // drops a column

  // A non-nullable trailing column must be rejected.
  std::vector<Field> bad_fields = base.fields();
  bad_fields.push_back({"label", DataType::Primitive(PhysicalType::kInt64),
                        LogicalType::kPlain, false, /*nullable=*/false});
  EXPECT_FALSE(CheckAppendSchema(base, Schema(bad_fields)).ok());

  // A changed prefix column must be rejected.
  std::vector<Field> renamed = base.fields();
  renamed[1].name = "rating";
  EXPECT_FALSE(CheckAppendSchema(base, Schema(renamed)).ok());

  // Flipping a prefix column's nullability must be rejected: a later
  // shard with the column non-nullable would become the reference
  // schema and brick every subsequent Open.
  std::vector<Field> flipped = evolved.fields();
  flipped[3].nullable = false;
  EXPECT_FALSE(CheckAppendSchema(evolved, Schema(flipped)).ok());
  EXPECT_TRUE(CheckAppendSchema(evolved, evolved).ok());

  // Flipping deletability would split the level-2 erasure guarantee
  // across shards.
  std::vector<Field> undeletable = base.fields();
  undeletable[0].deletable = false;
  EXPECT_FALSE(CheckAppendSchema(base, Schema(undeletable)).ok());
}

TEST(SchemaEvolution, OldShardsBackfillNullsForAppendedColumn) {
  InMemoryFileSystem fs;
  Schema base_schema = MakeBaseSchema();
  Schema evolved = MakeEvolvedSchema();
  auto old_data = MakeData(base_schema, 300, 7);
  ShardManifest base = WriteDataset(&fs, base_schema, old_data, "t", 50, 150);

  auto appender = DatasetAppender::Open(
      base, evolved,
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); });
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  auto new_data = MakeData(evolved, 200, 8);
  ASSERT_TRUE((*appender)->Append(new_data).ok());
  auto updated = (*appender)->Finish();
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  auto ds = OpenDataset(&fs, *updated);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ((*ds)->num_columns(), 4u);

  DecodedChunkCache cache(64 << 20, &fs.stats());
  std::vector<std::vector<ColumnVector>> first_groups;
  bool have_first = false;
  for (size_t threads : {1, 2, 4, 8}) {
    auto scan = DatasetScanBuilder(ds->get())
                    .Columns({"uid", "label"})
                    .Threads(threads)
                    .Cache(&cache)
                    .Scan();
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    auto label = scan->ConcatColumn(1);
    ASSERT_TRUE(label.ok());
    ASSERT_EQ(label->num_rows(), 500u);
    // Rows the old shards predate are null; appended rows are present.
    EXPECT_EQ(label->null_count(), 300u);
    for (size_t r = 0; r < 300; ++r) {
      EXPECT_TRUE(label->IsNull(r)) << "row " << r;
    }
    for (size_t r = 300; r < 500; ++r) {
      ASSERT_FALSE(label->IsNull(r)) << "row " << r;
      EXPECT_EQ(label->int_values()[r], new_data[3].int_values()[r - 300]);
    }
    // The uid column is unaffected by the evolution.
    ColumnVector uid = old_data[0];
    uid.AppendAllFrom(new_data[0]);
    EXPECT_EQ(*scan->ConcatColumn(0), uid);
    if (!have_first) {
      first_groups = std::move(scan->groups);
      have_first = true;
    } else {
      EXPECT_EQ(scan->groups, first_groups) << "threads " << threads;
    }
  }

  // A dataset whose newest shard lacks a column an older shard has
  // (i.e. not a prefix chain) must be rejected.
  std::vector<ShardInfo> reversed(updated->shards().rbegin(),
                                  updated->shards().rend());
  EXPECT_FALSE(OpenDataset(&fs, ShardManifest(reversed)).ok());
}

TEST(SchemaEvolution, WriterRejectsNullBearingBatches) {
  Schema evolved = MakeEvolvedSchema();
  std::vector<ColumnVector> batch;
  for (const LeafColumn& leaf : evolved.leaves()) {
    batch.push_back(ColumnVector::ForLeaf(leaf));
  }
  batch[0].AppendInt(1);
  batch[1].AppendReal(0.5);
  batch[2].AppendIntList({1, 2});
  batch[3].AppendNullRow();  // nulls cannot be encoded into pages
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("t");
  TableWriter writer(evolved, f->get(), {});
  EXPECT_FALSE(writer.WriteRowGroup(batch).ok());
}

// ---------------------------------------------------------- compaction

/// Builds the same dataset + deletions deterministically: 4 shards x
/// 200 rows (50-row groups), then deletes ~35% of every shard
/// (including ALL rows of shard 2's first group, so a whole group
/// vanishes).
struct DeletedFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeBaseSchema();
  ShardManifest manifest;

  DeletedFixture() {
    auto data = MakeData(schema, 800, 42);
    manifest = WriteDataset(&fs, schema, data, "t", 50, 200);
    EXPECT_EQ(manifest.num_shards(), 4u);
    for (size_t s = 0; s < manifest.num_shards(); ++s) {
      std::vector<uint64_t> doomed;
      for (uint64_t r = 0; r < manifest.shard(s).num_rows; ++r) {
        if (s == 2 && r < 50) {
          doomed.push_back(r);  // entire first group of shard 2
        } else if (r % 3 == 0) {
          doomed.push_back(r);
        }
      }
      DeleteShardRows(&fs, manifest.shard(s).name, doomed);
    }
  }

  /// Surviving rows, straight off the tombstoned dataset.
  std::vector<ColumnVector> SurvivorTruth() {
    auto ds = OpenDataset(&fs, manifest);
    EXPECT_TRUE(ds.ok());
    auto scan = DatasetScanBuilder(ds->get()).Scan();
    EXPECT_TRUE(scan.ok());
    std::vector<ColumnVector> cols;
    for (size_t c = 0; c < scan->columns.size(); ++c) {
      cols.push_back(*scan->ConcatColumn(c));
    }
    return cols;
  }
};

TEST(DatasetCompactor, CompactionDropsDeletedRowsAtEveryThreadCount) {
  DeletedFixture baseline;
  auto truth = baseline.SurvivorTruth();
  uint64_t survivors = truth[0].num_rows();
  ASSERT_LT(survivors, 800u * 7 / 10);  // >= 30% deleted overall

  std::vector<std::vector<uint8_t>> serial_bytes;
  std::vector<std::string> serial_names;
  for (size_t threads : {1, 2, 4, 8}) {
    DeletedFixture fx;  // identical dataset per thread count
    DatasetCompactor compactor(
        [&](const std::string& n) { return fx.fs.NewReadableFile(n); },
        [&](const std::string& n) { return fx.fs.NewWritableFile(n); },
        [&](const std::string& n) { return fx.fs.Delete(n); });
    DatasetCompactionOptions opts;
    opts.min_deleted_fraction = 0.3;
    opts.threads = threads;
    auto report = compactor.Compact(fx.manifest, opts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->shards_compacted, 4u);
    EXPECT_EQ(report->rows_reclaimed, 800u - survivors);
    EXPECT_LT(report->bytes_after, report->bytes_before);
    EXPECT_EQ(report->manifest.generation(), fx.manifest.generation() + 1);
    EXPECT_EQ(report->manifest.total_rows(), survivors);
    EXPECT_EQ(report->manifest.total_deleted_rows(), 0u);

    // Replaced files are GONE; rewrites live under generation names.
    for (const std::string& old : report->replaced_files) {
      EXPECT_FALSE(fx.fs.Exists(old));
    }
    for (size_t s = 0; s < report->manifest.num_shards(); ++s) {
      const ShardInfo& info = report->manifest.shard(s);
      EXPECT_EQ(info.generation, 1u);
      EXPECT_TRUE(fx.fs.Exists(info.name));
      // Compacted shards contain zero deleted rows.
      auto shard = *TableReader::Open(*fx.fs.NewReadableFile(info.name));
      EXPECT_EQ(DeletedFraction(*shard), 0.0);
      EXPECT_TRUE(shard->VerifyChecksums().ok());
    }

    // Scan of the compacted dataset == the surviving rows.
    auto ds = OpenDataset(&fx.fs, report->manifest);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    auto scan = DatasetScanBuilder(ds->get()).Threads(4).Scan();
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->num_rows(), survivors);
    for (size_t c = 0; c < truth.size(); ++c) {
      EXPECT_EQ(*scan->ConcatColumn(c), truth[c])
          << "column " << c << " threads " << threads;
    }

    // Compacted shard files are byte-identical to the serial rebuild.
    if (threads == 1) {
      for (size_t s = 0; s < report->manifest.num_shards(); ++s) {
        serial_names.push_back(report->manifest.shard(s).name);
        serial_bytes.push_back(
            ReadAllBytes(&fx.fs, report->manifest.shard(s).name));
      }
    } else {
      for (size_t s = 0; s < report->manifest.num_shards(); ++s) {
        ASSERT_EQ(report->manifest.shard(s).name, serial_names[s]);
        EXPECT_EQ(ReadAllBytes(&fx.fs, report->manifest.shard(s).name),
                  serial_bytes[s])
            << "shard " << s << " differs from serial rebuild at threads="
            << threads;
      }
    }
  }
}

TEST(DatasetCompactor, SkipsShardsBelowThresholdAndRefreshesCounts) {
  InMemoryFileSystem fs;
  Schema schema = MakeBaseSchema();
  auto data = MakeData(schema, 400, 5);
  ShardManifest manifest = WriteDataset(&fs, schema, data, "t", 50, 200);
  ASSERT_EQ(manifest.num_shards(), 2u);
  // Shard 0: 10% deleted (below threshold); shard 1: 50% (above).
  std::vector<uint64_t> few, many;
  for (uint64_t r = 0; r < 200; r += 10) few.push_back(r);
  for (uint64_t r = 0; r < 200; r += 2) many.push_back(r);
  DeleteShardRows(&fs, manifest.shard(0).name, few);
  DeleteShardRows(&fs, manifest.shard(1).name, many);

  DatasetCompactor compactor(
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); },
      [&](const std::string& n) { return fs.Delete(n); });
  DatasetCompactionOptions opts;
  opts.min_deleted_fraction = 0.3;
  auto report = compactor.Compact(manifest, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shards_examined, 2u);
  EXPECT_EQ(report->shards_compacted, 1u);

  const ShardInfo& kept = report->manifest.shard(0);
  EXPECT_EQ(kept.name, manifest.shard(0).name);  // untouched on disk
  EXPECT_EQ(kept.generation, 0u);
  EXPECT_EQ(kept.deleted_rows, 20u);  // hint refreshed from the footer
  const ShardInfo& rewritten = report->manifest.shard(1);
  EXPECT_EQ(rewritten.name, manifest.shard(1).name + ".g1");
  EXPECT_EQ(rewritten.generation, 1u);
  EXPECT_EQ(rewritten.num_rows, 100u);
  EXPECT_EQ(rewritten.deleted_rows, 0u);
  EXPECT_FALSE(fs.Exists(manifest.shard(1).name));

  // Compacting the result again is a no-op for the rewritten shard —
  // and CompactedShardName replaces the suffix instead of stacking.
  EXPECT_EQ(DatasetCompactor::CompactedShardName("t.shard-00001.g1", 2),
            "t.shard-00001.g2");
  EXPECT_EQ(DatasetCompactor::CompactedShardName("t.shard-00007", 1),
            "t.shard-00007.g1");
}

TEST(DatasetCompactor, AllRowsDeletedLeavesEmptyShard) {
  InMemoryFileSystem fs;
  Schema schema = MakeBaseSchema();
  auto data = MakeData(schema, 100, 6);
  ShardManifest manifest = WriteDataset(&fs, schema, data, "t", 50, 200);
  ASSERT_EQ(manifest.num_shards(), 1u);
  std::vector<uint64_t> all;
  for (uint64_t r = 0; r < 100; ++r) all.push_back(r);
  DeleteShardRows(&fs, manifest.shard(0).name, all);

  DatasetCompactor compactor(
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); });
  auto report = compactor.Compact(manifest, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->manifest.total_rows(), 0u);
  EXPECT_EQ(report->manifest.shard(0).num_row_groups, 0u);
  auto ds = OpenDataset(&fs, report->manifest);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  auto scan = DatasetScanBuilder(ds->get()).Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rows(), 0u);
  // No remover configured: the replaced file is reported, not deleted.
  ASSERT_EQ(report->replaced_files.size(), 1u);
  EXPECT_TRUE(fs.Exists(report->replaced_files[0]));
}

// ------------------------------------------------- cache invalidation

TEST(DatasetCompactor, WarmCacheNeverServesPreCompactionChunks) {
  DeletedFixture fx;
  auto truth = fx.SurvivorTruth();
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());

  // Warm the cache on the PRE-compaction dataset.
  auto pre = OpenDataset(&fx.fs, fx.manifest);
  ASSERT_TRUE(pre.ok());
  auto warm = DatasetScanBuilder(pre->get()).Threads(4).Cache(&cache).Scan();
  ASSERT_TRUE(warm.ok());
  ASSERT_GT(cache.num_entries(), 0u);

  DatasetCompactor compactor(
      [&](const std::string& n) { return fx.fs.NewReadableFile(n); },
      [&](const std::string& n) { return fx.fs.NewWritableFile(n); },
      [&](const std::string& n) { return fx.fs.Delete(n); });
  DatasetCompactionOptions opts;
  opts.threads = 2;
  opts.cache = &cache;
  auto report = compactor.Compact(fx.manifest, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Every pre-compaction entry was generation-stale and dropped.
  EXPECT_GT(cache.invalidations(), 0u);
  EXPECT_EQ(cache.num_entries(), 0u);

  // Post-compaction scans through the SAME cache: correct rows, and the
  // bumped shard generation means no pre-compaction entry can match.
  auto post = OpenDataset(&fx.fs, report->manifest);
  ASSERT_TRUE(post.ok());
  for (int epoch = 0; epoch < 2; ++epoch) {
    auto scan =
        DatasetScanBuilder(post->get()).Threads(4).Cache(&cache).Scan();
    ASSERT_TRUE(scan.ok());
    for (size_t c = 0; c < truth.size(); ++c) {
      EXPECT_EQ(*scan->ConcatColumn(c), truth[c])
          << "epoch " << epoch << " column " << c;
    }
  }
  EXPECT_GT(cache.hits(), 0u);  // the second epoch was served warm
}

TEST(DecodedChunkCache, WarmCacheNeverServesPreDeleteChunks) {
  // In-place deletes change decode output WITHOUT bumping the shard
  // generation; the per-group deleted count in the cache key is what
  // keeps a fresher footer from being served pre-delete chunks.
  InMemoryFileSystem fs;
  Schema schema = MakeBaseSchema();
  auto data = MakeData(schema, 200, 13);
  ShardManifest manifest = WriteDataset(&fs, schema, data, "t", 50, 200);
  DecodedChunkCache cache(64 << 20, &fs.stats());

  auto before = OpenDataset(&fs, manifest);
  ASSERT_TRUE(before.ok());
  auto warm = DatasetScanBuilder(before->get()).Cache(&cache).Scan();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->num_rows(), 200u);

  std::vector<uint64_t> doomed;
  for (uint64_t r = 0; r < 200; r += 2) doomed.push_back(r);
  DeleteShardRows(&fs, manifest.shard(0).name, doomed);

  // Re-open (fresh footer) and rescan through the SAME warm cache.
  auto after = OpenDataset(&fs, manifest);
  ASSERT_TRUE(after.ok());
  auto scan = DatasetScanBuilder(after->get()).Cache(&cache).Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rows(), 100u);  // deleted rows must NOT reappear
  auto uncached = DatasetScanBuilder(after->get()).Scan();
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(scan->groups, uncached->groups);
}

TEST(DatasetCompactor, PublishHookRunsBeforeGC) {
  DeletedFixture fx;
  DatasetCompactor compactor(
      [&](const std::string& n) { return fx.fs.NewReadableFile(n); },
      [&](const std::string& n) { return fx.fs.NewWritableFile(n); },
      [&](const std::string& n) { return fx.fs.Delete(n); });

  // A failing publish aborts before any GC: every old file survives.
  DatasetCompactionOptions failing;
  failing.publish = [](const ShardManifest&) {
    return Status::IOError("manifest store down");
  };
  EXPECT_FALSE(compactor.Compact(fx.manifest, failing).ok());
  for (size_t s = 0; s < fx.manifest.num_shards(); ++s) {
    EXPECT_TRUE(fx.fs.Exists(fx.manifest.shard(s).name));
  }

  // A successful publish observes the new manifest while the replaced
  // files still exist (persist point strictly precedes GC).
  DatasetCompactionOptions opts;
  bool published = false;
  opts.publish = [&](const ShardManifest& m) {
    published = true;
    EXPECT_EQ(m.generation(), fx.manifest.generation() + 1);
    for (size_t s = 0; s < fx.manifest.num_shards(); ++s) {
      EXPECT_TRUE(fx.fs.Exists(fx.manifest.shard(s).name));
      EXPECT_TRUE(fx.fs.Exists(m.shard(s).name));
    }
    return Status::OK();
  };
  auto report = compactor.Compact(fx.manifest, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(published);
  EXPECT_TRUE(report->gc_failures.empty());
  for (const std::string& old : report->replaced_files) {
    EXPECT_FALSE(fx.fs.Exists(old));  // GC ran after the publish
  }
}

TEST(DatasetEvolution, ConcurrentScansCompactionAndSharedCache) {
  // TSAN target: scans over the old generation race a compactor that
  // writes new shards and invalidates the shared cache, all on one
  // pool + one InMemoryFileSystem.
  DeletedFixture fx;
  auto truth = fx.SurvivorTruth();
  ThreadPool pool(4);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());
  auto pre = OpenDataset(&fx.fs, fx.manifest);
  ASSERT_TRUE(pre.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (int epoch = 0; epoch < 3; ++epoch) {
        auto scan = DatasetScanBuilder(pre->get())
                        .Pool(&pool)
                        .Cache(&cache)
                        .Scan();
        if (!scan.ok()) failures.fetch_add(1);
      }
    });
  }
  Result<DatasetCompactionReport> report = Status::Unknown("compactor not run");
  workers.emplace_back([&] {
    DatasetCompactor compactor(
        [&](const std::string& n) { return fx.fs.NewReadableFile(n); },
        [&](const std::string& n) { return fx.fs.NewWritableFile(n); });
    DatasetCompactionOptions opts;
    opts.pool = &pool;
    opts.threads = 4;
    opts.cache = &cache;
    report = compactor.Compact(fx.manifest, opts);
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto post = OpenDataset(&fx.fs, report->manifest);
  ASSERT_TRUE(post.ok());
  auto scan = DatasetScanBuilder(post->get()).Pool(&pool).Cache(&cache).Scan();
  ASSERT_TRUE(scan.ok());
  for (size_t c = 0; c < truth.size(); ++c) {
    EXPECT_EQ(*scan->ConcatColumn(c), truth[c]) << "column " << c;
  }
}

// ------------------------------------------------ end-to-end lifecycle

TEST(DatasetEvolution, WriteAppendDeleteCompactScanLifecycle) {
  // The acceptance pipeline in one piece: write → append (evolving the
  // schema) → delete ≥ 30% → compact → scan == survivors, with the
  // appended nullable column back-filled for pre-evolution rows.
  InMemoryFileSystem fs;
  Schema base_schema = MakeBaseSchema();
  Schema evolved = MakeEvolvedSchema();
  auto old_data = MakeData(base_schema, 400, 11);
  ShardManifest manifest = WriteDataset(&fs, base_schema, old_data, "t", 50,
                                        200);

  auto appender = DatasetAppender::Open(
      manifest, evolved,
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); });
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  auto new_data = MakeData(evolved, 200, 12);
  ASSERT_TRUE((*appender)->Append(new_data).ok());
  manifest = *(*appender)->Finish();
  EXPECT_EQ(manifest.total_rows(), 600u);

  // Delete 40% of every shard.
  for (size_t s = 0; s < manifest.num_shards(); ++s) {
    std::vector<uint64_t> doomed;
    for (uint64_t r = 0; r < manifest.shard(s).num_rows; r += 5) {
      doomed.push_back(r);
      doomed.push_back(r + 1);
    }
    DeleteShardRows(&fs, manifest.shard(s).name, doomed);
  }
  auto pre = OpenDataset(&fs, manifest);
  ASSERT_TRUE(pre.ok());
  auto truth_scan = DatasetScanBuilder(pre->get()).Scan();
  ASSERT_TRUE(truth_scan.ok());
  uint64_t survivors = truth_scan->num_rows();
  EXPECT_EQ(survivors, 360u);

  DatasetCompactor compactor(
      [&](const std::string& n) { return fs.NewReadableFile(n); },
      [&](const std::string& n) { return fs.NewWritableFile(n); },
      [&](const std::string& n) { return fs.Delete(n); });
  DatasetCompactionOptions copts;
  copts.threads = 4;
  auto report = compactor.Compact(manifest, copts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->manifest.total_rows(), survivors);
  EXPECT_EQ(report->manifest.generation(), manifest.generation() + 1);

  // The compacted dataset still evolves correctly: nullable back-fill
  // applies to the REWRITTEN old shards too (their schema is
  // unchanged by compaction).
  auto post = OpenDataset(&fs, report->manifest);
  ASSERT_TRUE(post.ok());
  auto scan = DatasetScanBuilder(post->get())
                  .Columns({"uid", "label"})
                  .Threads(4)
                  .Scan();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  auto uid = scan->ConcatColumn(0);
  auto label = scan->ConcatColumn(1);
  ASSERT_TRUE(uid.ok());
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(uid->num_rows(), survivors);
  // 240 surviving pre-evolution rows are null; 120 appended survive.
  EXPECT_EQ(label->null_count(), 240u);
  // Row content matches the tombstone-filtered pre-compaction scan.
  auto pre_proj = DatasetScanBuilder(pre->get())
                      .Columns({"uid", "label"})
                      .Scan();
  ASSERT_TRUE(pre_proj.ok());
  EXPECT_EQ(*uid, *pre_proj->ConcatColumn(0));
  EXPECT_EQ(*label, *pre_proj->ConcatColumn(1));

  // And the manifest round-trips through its serialized form.
  Buffer blob = report->manifest.Serialize();
  auto parsed = ShardManifest::Parse(blob.AsSlice());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, report->manifest);
}

}  // namespace
}  // namespace bullion

// I/O substrate tests: in-memory FS accounting, POSIX files, in-place
// update discipline, device cost models.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "io/file.h"
#include "io/simulated_device.h"

namespace bullion {
namespace {

TEST(InMemoryFs, WriteReadRoundTrip) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("a");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(Slice("hello ", 6)).ok());
    ASSERT_TRUE((*f)->Append(Slice("world", 5)).ok());
    EXPECT_EQ(*(*f)->Size(), 11u);
  }
  auto r = fs.NewReadableFile("a");
  ASSERT_TRUE(r.ok());
  Buffer buf;
  ASSERT_TRUE((*r)->Read(6, 5, &buf).ok());
  EXPECT_EQ(buf.AsSlice().ToString(), "world");
  EXPECT_EQ(*(*r)->Size(), 11u);
}

TEST(InMemoryFs, ShortReadIsError) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("a");
    ASSERT_TRUE((*f)->Append(Slice("abc", 3)).ok());
  }
  auto r = fs.NewReadableFile("a");
  Buffer buf;
  EXPECT_FALSE((*r)->Read(1, 10, &buf).ok());
  EXPECT_FALSE((*r)->Read(100, 1, &buf).ok());
}

TEST(InMemoryFs, UpdateCannotExtend) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("a");
    ASSERT_TRUE((*f)->Append(Slice("0123456789", 10)).ok());
  }
  auto u = fs.OpenForUpdate("a");
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE((*u)->WriteAt(4, Slice("XY", 2)).ok());
  EXPECT_FALSE((*u)->WriteAt(9, Slice("XY", 2)).ok())
      << "in-place updates must not extend the file";
  auto r = fs.NewReadableFile("a");
  Buffer buf;
  ASSERT_TRUE((*r)->Read(0, 10, &buf).ok());
  EXPECT_EQ(buf.AsSlice().ToString(), "0123XY6789");
}

TEST(InMemoryFs, StatsCountOpsBytesSeeks) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("a");
    std::vector<uint8_t> data(4096, 7);
    ASSERT_TRUE((*f)->Append(Slice(data.data(), data.size())).ok());
  }
  fs.ResetStats();
  auto r = fs.NewReadableFile("a");
  Buffer buf;
  ASSERT_TRUE((*r)->Read(0, 100, &buf).ok());     // seek (first op)
  ASSERT_TRUE((*r)->Read(100, 100, &buf).ok());   // sequential
  ASSERT_TRUE((*r)->Read(1000, 100, &buf).ok());  // seek
  EXPECT_EQ(fs.stats().read_ops, 3u);
  EXPECT_EQ(fs.stats().bytes_read, 300u);
  EXPECT_EQ(fs.stats().seeks, 2u);
}

TEST(InMemoryFs, MissingFileNotFound) {
  InMemoryFileSystem fs;
  EXPECT_FALSE(fs.NewReadableFile("nope").ok());
  EXPECT_FALSE(fs.OpenForUpdate("nope").ok());
  EXPECT_FALSE(fs.FileSize("nope").ok());
  EXPECT_FALSE(fs.Exists("nope"));
  EXPECT_FALSE(fs.Delete("nope").ok());
}

TEST(InMemoryFs, DeleteAndRecreate) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("a");
    ASSERT_TRUE((*f)->Append(Slice("x", 1)).ok());
  }
  EXPECT_TRUE(fs.Exists("a"));
  EXPECT_TRUE(fs.Delete("a").ok());
  EXPECT_FALSE(fs.Exists("a"));
}

TEST(PosixFile, RoundTripAndInPlaceUpdate) {
  std::string path = "/tmp/bullion_io_test.bin";
  {
    auto f = OpenPosixWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(Slice("abcdefgh", 8)).ok());
    ASSERT_TRUE((*f)->Flush().ok());
  }
  {
    auto u = OpenPosixWritableFile(path, /*truncate=*/false);
    ASSERT_TRUE(u.ok());
    ASSERT_TRUE((*u)->WriteAt(2, Slice("XY", 2)).ok());
    EXPECT_FALSE((*u)->WriteAt(7, Slice("ZZ", 2)).ok());
  }
  {
    auto r = OpenPosixReadableFile(path);
    ASSERT_TRUE(r.ok());
    Buffer buf;
    ASSERT_TRUE((*r)->Read(0, 8, &buf).ok());
    EXPECT_EQ(buf.AsSlice().ToString(), "abXYefgh");
    EXPECT_EQ(*(*r)->Size(), 8u);
  }
  std::remove(path.c_str());
}

TEST(PosixFile, MissingFileFails) {
  EXPECT_FALSE(OpenPosixReadableFile("/nonexistent/zzz").ok());
}

TEST(DeviceModel, SeekVsBandwidthTradeoffs) {
  IoStats scattered;
  scattered.read_ops = 100;
  scattered.bytes_read = 100 * 4096;
  scattered.seeks = 100;
  IoStats sequential;
  sequential.read_ops = 1;
  sequential.bytes_read = 100 * 4096;
  sequential.seeks = 1;

  // On HDD the seek gap is enormous; on NVMe it is small.
  double hdd_ratio = ModeledTimeUs(scattered, DeviceModel::Hdd()) /
                     ModeledTimeUs(sequential, DeviceModel::Hdd());
  double nvme_ratio = ModeledTimeUs(scattered, DeviceModel::Nvme()) /
                      ModeledTimeUs(sequential, DeviceModel::Nvme());
  EXPECT_GT(hdd_ratio, 50.0);
  EXPECT_LT(nvme_ratio, 10.0);
  EXPECT_GT(nvme_ratio, 1.0);
}

TEST(DeviceModel, MoreBytesCostMore) {
  IoStats small, large;
  small.read_ops = large.read_ops = 1;
  small.seeks = large.seeks = 1;
  small.bytes_read = 1 << 20;
  large.bytes_read = 64 << 20;
  for (const DeviceModel& m :
       {DeviceModel(), DeviceModel::Nvme(), DeviceModel::Hdd(),
        DeviceModel::ObjectStore()}) {
    EXPECT_GT(ModeledTimeUs(large, m), ModeledTimeUs(small, m));
  }
}

}  // namespace
}  // namespace bullion

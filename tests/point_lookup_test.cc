// Point-lookup serving-tier tests: split-block Bloom filters (round
// trip, FPR bound, malformed input), the footer/manifest version
// ladders degrading to "no Bloom, never prune" with exact results, the
// bullion::Lookup front door's byte-identity with a filtered Scan at
// every thread count, late materialization (including the
// deleted-rows fallback), IN/OR predicate pushdown, and concurrent
// Zipf-keyed lookers sharing one pool and cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"
#include "workload/zipf.h"

namespace bullion {
namespace {

Schema MakeServeSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kPlain, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  return Schema(std::move(fields));
}

/// Rows with uid == stride * global row index, so with stride > 1
/// every odd key is inside every zone map's [min, max] yet absent —
/// exactly what a Bloom filter (and nothing else) can prove.
std::vector<ColumnVector> MakeServeData(const Schema& schema, size_t rows,
                                        size_t first_row,
                                        int64_t stride = 1) {
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (size_t r = 0; r < rows; ++r) {
    int64_t uid = stride * static_cast<int64_t>(first_row + r);
    cols[0].AppendInt(uid);
    cols[1].AppendReal(static_cast<double>(uid) / 1000.0);
    cols[2].AppendBinary("tag" + std::to_string(uid % 7));
    cols[3].AppendIntList({uid, uid + 1});
  }
  return cols;
}

struct FileFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeServeSchema();
  std::unique_ptr<TableReader> reader;

  FileFixture(size_t total_rows, uint32_t rows_per_group,
              bool write_chunk_stats = true, double bloom_bits_per_key = 10.0,
              int64_t stride = 1) {
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t r = 0; r < total_rows; r += rows_per_group) {
      groups.push_back(MakeServeData(
          schema, std::min<size_t>(rows_per_group, total_rows - r), r,
          stride));
    }
    WriterOptions opts;
    opts.rows_per_page = 16;
    opts.write_chunk_stats = write_chunk_stats;
    opts.bloom_bits_per_key = bloom_bits_per_key;
    auto f = fs.NewWritableFile("t");
    EXPECT_TRUE(WriteTableFile(f->get(), schema, groups, opts).ok());
    reader = *TableReader::Open(*fs.NewReadableFile("t"));
  }
};

struct DatasetFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeServeSchema();
  ShardManifest manifest;
  std::unique_ptr<ShardedTableReader> reader;

  DatasetFixture(size_t total_rows, uint32_t rows_per_group,
                 uint64_t rows_per_shard, double bloom_bits_per_key = 10.0,
                 int64_t stride = 1) {
    ShardedWriterOptions opts;
    opts.rows_per_group = rows_per_group;
    opts.target_rows_per_shard = rows_per_shard;
    opts.base_name = "t";
    opts.writer.rows_per_page = 16;
    opts.writer.bloom_bits_per_key = bloom_bits_per_key;
    ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
      return fs.NewWritableFile(name);
    });
    EXPECT_TRUE(
        writer.Append(MakeServeData(schema, total_rows, 0, stride)).ok());
    manifest = *writer.Finish();
    reader = *ShardedTableReader::Open(manifest, [&](const std::string& n) {
      return fs.NewReadableFile(n);
    });
  }

  std::unique_ptr<ShardedTableReader> Reopen(const ShardManifest& m) {
    return *ShardedTableReader::Open(m, [&](const std::string& n) {
      return fs.NewReadableFile(n);
    });
  }
};

/// Drains a filtered scan into per-column concatenations — the ground
/// truth a Lookup must match byte for byte.
std::vector<ColumnVector> DrainConcat(BatchStream* stream) {
  std::vector<ColumnVector> concat;
  RowBatch batch;
  for (;;) {
    auto more = stream->Next(&batch);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    if (concat.empty()) {
      concat = std::move(batch.columns);
      continue;
    }
    for (size_t c = 0; c < concat.size(); ++c) {
      for (size_t r = 0; r < batch.columns[c].num_rows(); ++r) {
        concat[c].AppendRowFrom(batch.columns[c], static_cast<int64_t>(r));
      }
    }
  }
  return concat;
}

// ------------------------------------------------------- Bloom filters

TEST(Bloom, RoundTripHasNoFalseNegatives) {
  const size_t kKeys = 10000;
  BloomFilter builder = BloomFilter::Sized(kKeys, 10.0);
  for (size_t k = 0; k < kKeys; ++k) builder.AddHash(BloomHashInt(k * 3));
  std::string bytes = builder.ToBytes();
  ASSERT_FALSE(bytes.empty());
  ASSERT_EQ(bytes.size() % kBloomBlockBytes, 0u);
  auto view = BloomFilterView::Wrap(Slice(bytes));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  for (size_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(view->MayContain(BloomHashInt(k * 3))) << k;
  }
}

TEST(Bloom, FprStaysNearTheModel) {
  const size_t kKeys = 8192;
  BloomFilter builder = BloomFilter::Sized(kKeys, 10.0);
  for (size_t k = 0; k < kKeys; ++k) builder.AddHash(BloomHashInt(k));
  std::string bytes = builder.ToBytes();
  auto view = BloomFilterView::Wrap(Slice(bytes));
  ASSERT_TRUE(view.ok());
  const double expected =
      BloomExpectedFpr(kKeys, bytes.size() / kBloomBlockBytes);
  EXPECT_GT(expected, 0.0);
  EXPECT_LT(expected, 0.05);  // ~0.9% at 10 bits/key
  size_t false_positives = 0;
  const size_t kProbes = 20000;
  for (size_t k = 0; k < kProbes; ++k) {
    // Probe keys disjoint from the inserted range.
    if (view->MayContain(BloomHashInt(1 << 20 | k))) ++false_positives;
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  // Loose statistical bound: 4x the model plus slack for small samples.
  EXPECT_LT(measured, 4.0 * expected + 0.01)
      << "measured " << measured << " expected " << expected;
}

TEST(Bloom, WrapRejectsMalformedBytes) {
  EXPECT_FALSE(BloomFilterView::Wrap(Slice()).ok());
  std::string odd(33, '\0');
  EXPECT_FALSE(BloomFilterView::Wrap(Slice(odd)).ok());
}

TEST(Bloom, BinaryKeysRoundTrip) {
  BloomFilter builder = BloomFilter::Sized(100, 12.0);
  for (int k = 0; k < 100; ++k) {
    builder.AddHash(BloomHashBinary("key-" + std::to_string(k)));
  }
  std::string bytes = builder.ToBytes();
  auto view = BloomFilterView::Wrap(Slice(bytes));
  ASSERT_TRUE(view.ok());
  for (int k = 0; k < 100; ++k) {
    EXPECT_TRUE(view->MayContain(BloomHashBinary("key-" + std::to_string(k))));
  }
}

TEST(Bloom, FilterValueDomainMismatchRefusesToHash) {
  uint64_t h = 0;
  // Real constants never hash (float columns are never filtered).
  EXPECT_FALSE(BloomHashFilterValue(PhysicalType::kInt64, FilterValue(1.5), &h));
  // Binary constant against an integer column and vice versa.
  EXPECT_FALSE(BloomHashFilterValue(PhysicalType::kInt64, FilterValue("x"), &h));
  EXPECT_FALSE(BloomHashFilterValue(PhysicalType::kBinary, FilterValue(7), &h));
  // Matching domains hash to the write-side functions.
  ASSERT_TRUE(BloomHashFilterValue(PhysicalType::kInt64, FilterValue(7), &h));
  EXPECT_EQ(h, BloomHashInt(7));
  ASSERT_TRUE(BloomHashFilterValue(PhysicalType::kBinary, FilterValue("x"), &h));
  EXPECT_EQ(h, BloomHashBinary("x"));
}

TEST(Bloom, EligibilityMatrix) {
  EXPECT_TRUE(BloomEligibleColumn(PhysicalType::kInt64, 0));
  EXPECT_TRUE(BloomEligibleColumn(PhysicalType::kBinary, 0));
  EXPECT_FALSE(BloomEligibleColumn(PhysicalType::kFloat64, 0));
  EXPECT_FALSE(BloomEligibleColumn(PhysicalType::kFloat32, 0));
  EXPECT_FALSE(BloomEligibleColumn(PhysicalType::kInt64, 1));  // lists
}

// ------------------------------------------- footer + manifest ladders

TEST(PointLookup, FooterV3CarriesChunkBloomsForEligibleColumns) {
  FileFixture fx(200, 50);
  const FooterView& footer = fx.reader->footer();
  ASSERT_TRUE(footer.has_chunk_stats());
  ASSERT_TRUE(footer.has_chunk_blooms());
  for (uint32_t g = 0; g < footer.num_row_groups(); ++g) {
    EXPECT_FALSE(footer.chunk_bloom(g, 0).empty());  // uid: int64
    EXPECT_TRUE(footer.chunk_bloom(g, 1).empty());   // score: float64
    EXPECT_FALSE(footer.chunk_bloom(g, 2).empty());  // tag: binary
    EXPECT_TRUE(footer.chunk_bloom(g, 3).empty());   // clk_seq: list
  }
}

TEST(PointLookup, StatsOffDegradesToV1NoBloomNeverPruneStaysExact) {
  FileFixture fx(200, 50, /*write_chunk_stats=*/false);
  const FooterView& footer = fx.reader->footer();
  EXPECT_FALSE(footer.has_chunk_stats());
  EXPECT_FALSE(footer.has_chunk_blooms());
  IoStats stats;
  auto hit = Lookup(fx.reader.get())
                 .Key("uid", 123)
                 .Columns({"uid", "score"})
                 .Stats(&stats)
                 .Run();
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->num_rows(), 1u);
  EXPECT_EQ(hit->columns[0].int_values()[0], 123);
  // Nothing can prune without stats — but results stay exact.
  EXPECT_EQ(stats.groups_pruned.load(), 0u);
  auto miss = Lookup(fx.reader.get()).Key("uid", 100000).Run();
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->num_rows(), 0u);
}

TEST(PointLookup, BloomDisabledWritesV2ZonesStillPrune) {
  FileFixture fx(200, 50, /*write_chunk_stats=*/true,
                 /*bloom_bits_per_key=*/0.0);
  const FooterView& footer = fx.reader->footer();
  EXPECT_TRUE(footer.has_chunk_stats());
  EXPECT_FALSE(footer.has_chunk_blooms());
  IoStats stats;
  auto hit =
      Lookup(fx.reader.get()).Key("uid", 60).Stats(&stats).Run();
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->num_rows(), 1u);
  EXPECT_GT(stats.groups_pruned.load(), 0u);  // zones prune other groups
}

TEST(PointLookup, ManifestV4CarriesShardBloomsAndRoundTrips) {
  DatasetFixture fx(300, 50, 100);
  ASSERT_GT(fx.manifest.num_shards(), 1u);
  for (size_t s = 0; s < fx.manifest.num_shards(); ++s) {
    EXPECT_NE(fx.manifest.shard(s).column_bloom(0), nullptr);  // uid
    EXPECT_NE(fx.manifest.shard(s).column_bloom(2), nullptr);  // tag
    EXPECT_EQ(fx.manifest.shard(s).column_bloom(1), nullptr);  // float
    EXPECT_EQ(fx.manifest.shard(s).column_bloom(3), nullptr);  // list
  }
  Buffer blob = fx.manifest.Serialize();
  auto parsed = ShardManifest::Parse(blob.AsSlice());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, fx.manifest);
}

TEST(PointLookup, ManifestWithoutBloomsDegradesToChunkFilters) {
  DatasetFixture fx(300, 50, 100);
  // Simulate a manifest published by a pre-Bloom writer (v1–v3 parse
  // into exactly this shape: no column_blooms anywhere).
  std::vector<ShardInfo> stripped = fx.manifest.shards();
  for (ShardInfo& s : stripped) s.column_blooms.clear();
  ShardManifest old(std::move(stripped), fx.manifest.generation());
  auto reader = fx.Reopen(old);
  for (int64_t key : {0, 155, 299, 100000}) {
    auto hit = Lookup(reader.get()).Key("uid", key).Columns({"uid"}).Run();
    ASSERT_TRUE(hit.ok()) << hit.status().ToString();
    EXPECT_EQ(hit->num_rows(), key < 300 ? 1u : 0u) << key;
  }
}

// ----------------------------------------------- lookup byte-identity

TEST(PointLookup, LookupMatchesFilteredScanAtEveryThreadCount) {
  DatasetFixture fx(600, 50, 200);
  for (int64_t key : {0, 299, 555, 999999}) {
    auto truth_stream = Scan(fx.reader.get())
                            .Columns({"uid", "score", "tag"})
                            .Filter("uid", CompareOp::kEq, key)
                            .Threads(1)
                            .Stream();
    ASSERT_TRUE(truth_stream.ok()) << truth_stream.status().ToString();
    std::vector<ColumnVector> truth = DrainConcat(truth_stream->get());
    for (size_t threads : {1, 2, 4, 8}) {
      auto hit = Lookup(fx.reader.get())
                     .Key("uid", key)
                     .Columns({"uid", "score", "tag"})
                     .Threads(threads)
                     .Run();
      ASSERT_TRUE(hit.ok()) << hit.status().ToString();
      if (truth.empty()) {
        EXPECT_EQ(hit->num_rows(), 0u) << "key=" << key;
        continue;
      }
      ASSERT_EQ(hit->columns.size(), truth.size())
          << "key=" << key << " threads=" << threads;
      for (size_t c = 0; c < truth.size(); ++c) {
        EXPECT_EQ(hit->columns[c], truth[c])
            << "key=" << key << " threads=" << threads << " col=" << c;
      }
    }
  }
}

TEST(PointLookup, LateMaterializationOnAndOffAreIdentical) {
  DatasetFixture fx(600, 50, 200);
  for (int64_t key : {7, 451}) {
    auto eager = Lookup(fx.reader.get())
                     .Key("uid", key)
                     .LateMaterialize(false)
                     .Run();
    auto late = Lookup(fx.reader.get()).Key("uid", key).Run();
    ASSERT_TRUE(eager.ok());
    ASSERT_TRUE(late.ok());
    ASSERT_EQ(eager->columns.size(), late->columns.size());
    for (size_t c = 0; c < eager->columns.size(); ++c) {
      EXPECT_EQ(eager->columns[c], late->columns[c]) << "col " << c;
    }
    EXPECT_EQ(eager->column_names, late->column_names);
  }
}

TEST(PointLookup, BinaryKeyLookup) {
  DatasetFixture fx(350, 50, 175);
  auto truth_stream = Scan(fx.reader.get())
                          .Columns({"uid", "tag"})
                          .Filter("tag", CompareOp::kEq, "tag3")
                          .Threads(1)
                          .Stream();
  ASSERT_TRUE(truth_stream.ok()) << truth_stream.status().ToString();
  std::vector<ColumnVector> truth = DrainConcat(truth_stream->get());
  ASSERT_FALSE(truth.empty());
  ASSERT_GT(truth[0].num_rows(), 0u);
  auto hit = Lookup(fx.reader.get())
                 .Key("tag", "tag3")
                 .Columns({"uid", "tag"})
                 .Threads(2)
                 .Run();
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->columns.size(), truth.size());
  for (size_t c = 0; c < truth.size(); ++c) {
    EXPECT_EQ(hit->columns[c], truth[c]);
  }
  // A binary key no row holds misses outright.
  auto miss = Lookup(fx.reader.get()).Key("tag", "absent").Run();
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->num_rows(), 0u);
}

TEST(PointLookup, BatchKeysMatchInScan) {
  DatasetFixture fx(600, 50, 200);
  std::vector<FilterValue> keys = {5, 250, 555, 100000};
  auto truth_stream = Scan(fx.reader.get())
                          .Columns({"uid", "score"})
                          .FilterIn("uid", keys)
                          .Threads(1)
                          .Stream();
  ASSERT_TRUE(truth_stream.ok()) << truth_stream.status().ToString();
  std::vector<ColumnVector> truth = DrainConcat(truth_stream->get());
  ASSERT_FALSE(truth.empty());
  EXPECT_EQ(truth[0].num_rows(), 3u);  // 100000 is absent
  auto hits = Lookup(fx.reader.get())
                  .Keys("uid", keys)
                  .Columns({"uid", "score"})
                  .Run();
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  for (size_t c = 0; c < truth.size(); ++c) {
    EXPECT_EQ(hits->columns[c], truth[c]);
  }
}

TEST(PointLookup, RunWithoutKeyIsRejected) {
  FileFixture fx(100, 50);
  auto r = Lookup(fx.reader.get()).Columns({"uid"}).Run();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(PointLookup, EmptyKeyListMatchesNothingWithoutPreads) {
  FileFixture fx(200, 50);
  IoStats& io = fx.fs.stats();
  io.Reset();
  auto r = Lookup(fx.reader.get()).Keys("uid", {}).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0u);
  // An empty IN list prunes every group before a single data pread.
  EXPECT_EQ(io.read_ops.load(), 0u);
}

// ---------------------------------------------------- pruning economics

TEST(PointLookup, BloomSkipsPreadsZonesCannotOnInZoneMisses) {
  // stride 2: odd keys sit inside every zone range but no row holds
  // them — only the Bloom filters can prove the groups empty.
  FileFixture with_bloom(400, 50, true, 10.0, /*stride=*/2);
  FileFixture no_bloom(400, 50, true, 0.0, /*stride=*/2);
  auto probe = [](FileFixture& fx, IoStats* stats) {
    for (int64_t key = 1; key < 100; key += 14) {  // odd → absent
      auto r = Lookup(fx.reader.get())
                   .Key("uid", key)
                   .Columns({"uid", "score"})
                   .Stats(stats)
                   .Run();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->num_rows(), 0u) << key;
    }
  };
  with_bloom.fs.stats().Reset();
  IoStats bloom_stats;
  probe(with_bloom, &bloom_stats);
  uint64_t bloom_reads = with_bloom.fs.stats().read_ops.load();

  no_bloom.fs.stats().Reset();
  IoStats plain_stats;
  probe(no_bloom, &plain_stats);
  uint64_t plain_reads = no_bloom.fs.stats().read_ops.load();

  // The Bloom-filtered file answers every in-zone miss with zero data
  // preads; the zones-only file must fetch and row-filter.
  EXPECT_EQ(bloom_reads, 0u);
  EXPECT_GT(plain_reads, 0u);
  EXPECT_GT(bloom_stats.groups_pruned.load(), plain_stats.groups_pruned.load());
}

TEST(PointLookup, ShardBloomsPruneWholeShardsOnInZoneMisses) {
  DatasetFixture fx(600, 50, 200, 10.0, /*stride=*/2);
  ASSERT_GT(fx.manifest.num_shards(), 1u);
  IoStats stats;
  // Key 1 is odd: inside the first shard's zone range [0, 398] yet
  // absent, so only the aggregate Bloom filter can prove that shard
  // empty; the later shards' zones exclude it outright. Every shard is
  // skipped without touching its footer. (The key is fixed: data and
  // hash seed are deterministic, and 1 is a verified Bloom negative —
  // some odd keys are legitimate ~1% false positives.)
  auto r = Lookup(fx.reader.get()).Key("uid", 1).Stats(&stats).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(stats.shards_pruned.load(), fx.manifest.num_shards());
}

TEST(PointLookup, LateMaterializationShrinksBytesFetched) {
  // Wide projection + single-row match: the eager path fetches every
  // projected column of the surviving group; the late path fetches the
  // key column plus one page run per remaining column.
  FileFixture fx(2000, 500);
  IoStats& io = fx.fs.stats();

  io.Reset();
  auto eager = Lookup(fx.reader.get())
                   .Key("uid", 777)
                   .Columns({"uid", "score", "tag", "clk_seq"})
                   .LateMaterialize(false)
                   .Run();
  ASSERT_TRUE(eager.ok());
  ASSERT_EQ(eager->num_rows(), 1u);
  uint64_t eager_bytes = io.bytes_read.load();

  io.Reset();
  auto late = Lookup(fx.reader.get())
                  .Key("uid", 777)
                  .Columns({"uid", "score", "tag", "clk_seq"})
                  .Run();
  ASSERT_TRUE(late.ok());
  ASSERT_EQ(late->num_rows(), 1u);
  uint64_t late_bytes = io.bytes_read.load();

  for (size_t c = 0; c < eager->columns.size(); ++c) {
    EXPECT_EQ(eager->columns[c], late->columns[c]);
  }
  EXPECT_LT(late_bytes, eager_bytes);
}

// -------------------------------------------- late-mat with deletions

TEST(PointLookup, LateMaterializationFallsBackOnDeletedGroups) {
  InMemoryFileSystem fs;
  Schema schema = MakeServeSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t r = 0; r < 200; r += 50) {
    groups.push_back(MakeServeData(schema, 50, r));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 16;
  auto f = fs.NewWritableFile("t");
  ASSERT_TRUE(WriteTableFile(f->get(), schema, groups, wopts).ok());
  {
    auto reader = *TableReader::Open(*fs.NewReadableFile("t"));
    auto rf = fs.NewReadableFile("t");
    auto uf = fs.OpenForUpdate("t");
    DeleteExecutor exec(rf->get(), uf->get(), reader->footer());
    // Delete rows around (but not including) uid 60 in its group.
    std::vector<uint64_t> doomed = {58, 59, 61, 62};
    auto report = exec.DeleteRows(doomed, ComplianceLevel::kLevel2);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  auto reader = *TableReader::Open(*fs.NewReadableFile("t"));
  // uid 60 survives; its group now has in-place deletes, so late
  // materialization must silently take the full-fetch path and still
  // return exactly the surviving row.
  auto hit = Lookup(reader.get())
                 .Key("uid", 60)
                 .Columns({"uid", "score", "tag"})
                 .Run();
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->num_rows(), 1u);
  EXPECT_EQ(hit->columns[0].int_values()[0], 60);
  auto gone = Lookup(reader.get()).Key("uid", 59).Run();
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->num_rows(), 0u);
}

// ------------------------------------------------- IN / OR pushdown

TEST(PointLookup, ZoneMapInDisjunction) {
  ZoneMap zone = ZoneMap::OfInts(100, 200);
  Filter in_hit{"c", std::vector<FilterValue>{5, 150, 999}};
  Filter in_miss{"c", std::vector<FilterValue>{5, 99, 201}};
  Filter in_empty{"c", std::vector<FilterValue>{}};
  EXPECT_TRUE(ZoneMapMayMatch(zone, in_hit));
  EXPECT_FALSE(ZoneMapMayMatch(zone, in_miss));
  EXPECT_FALSE(ZoneMapMayMatch(zone, in_empty));
  // Unknown zones cannot prune a non-empty list; an empty IN matches
  // no row regardless of the zone.
  EXPECT_TRUE(ZoneMapMayMatch(ZoneMap{}, in_hit));
  EXPECT_FALSE(ZoneMapMayMatch(ZoneMap{}, in_empty));
}

TEST(PointLookup, CrossColumnOrClauseMatchesManualUnion) {
  FileFixture fx(600, 50);
  FilterClause clause;
  clause.any_of.push_back(Filter{"uid", CompareOp::kLt, 5});
  clause.any_of.push_back(Filter{"uid", CompareOp::kGe, 595});
  IoStats stats;
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid"})
                    .FilterAnyOf(clause)
                    .Stats(&stats)
                    .Threads(2)
                    .Stream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<ColumnVector> got = DrainConcat(stream->get());
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].num_rows(), 10u);
  std::set<int64_t> uids(got[0].int_values().begin(),
                         got[0].int_values().end());
  for (int64_t u : {0, 1, 2, 3, 4, 595, 596, 597, 598, 599}) {
    EXPECT_EQ(uids.count(u), 1u) << u;
  }
  // Middle groups satisfy neither arm: the clause prunes them.
  EXPECT_GT(stats.groups_pruned.load(), 0u);
}

TEST(PointLookup, OrClauseOnlyPrunesWhenEveryArmIsDisproven) {
  FileFixture fx(600, 50);
  // Arm 1 misses every zone; arm 2 matches one group — no group where
  // arm 2 matches may be pruned.
  FilterClause clause;
  clause.any_of.push_back(Filter{"uid", CompareOp::kEq, 100000});
  clause.any_of.push_back(Filter{"uid", CompareOp::kEq, 300});
  auto stream =
      Scan(fx.reader.get()).Columns({"uid"}).FilterAnyOf(clause).Stream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<ColumnVector> got = DrainConcat(stream->get());
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].num_rows(), 1u);
  EXPECT_EQ(got[0].int_values()[0], 300);
}

TEST(PointLookup, EmptyOrClauseIsRejected) {
  FileFixture fx(100, 50);
  auto stream =
      Scan(fx.reader.get()).Columns({"uid"}).FilterAnyOf(FilterClause{}).Stream();
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsInvalidArgument());
}

// ---------------------------------------------------- concurrency

TEST(PointLookup, ConcurrentZipfLookersSharePoolAndCache) {
  DatasetFixture fx(600, 50, 200);
  ThreadPool pool(4);
  DecodedChunkCache cache(16 << 20);
  const size_t kLookers = 4;
  const size_t kLookupsEach = 25;
  std::vector<std::thread> lookers;
  std::vector<Status> failures(kLookers, Status::OK());
  for (size_t t = 0; t < kLookers; ++t) {
    lookers.emplace_back([&, t] {
      ZipfGenerator zipf(600, 1.1, /*seed=*/17 + t);
      for (size_t i = 0; i < kLookupsEach; ++i) {
        int64_t key = static_cast<int64_t>(zipf.Next());
        auto hit = Lookup(fx.reader.get())
                       .Key("uid", key)
                       .Columns({"uid", "score"})
                       .Pool(&pool)
                       .Cache(&cache)
                       .Run();
        if (!hit.ok()) {
          failures[t] = hit.status();
          return;
        }
        // uid is dense in [0, 600): every Zipf key hits exactly once,
        // and the row must carry the derived score.
        if (hit->num_rows() != 1 ||
            hit->columns[0].int_values()[0] != key ||
            hit->columns[1].real_values()[0] !=
                static_cast<double>(key) / 1000.0) {
          failures[t] = Status::Unknown("wrong row for key " +
                                        std::to_string(key));
          return;
        }
      }
    });
  }
  for (auto& th : lookers) th.join();
  for (size_t t = 0; t < kLookers; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "looker " << t << ": "
                                  << failures[t].ToString();
  }
}

}  // namespace
}  // namespace bullion

// Dataset-layer tests: shard manifest index + round-trip, sharded
// writer splitting, and the headline correctness claim — a sharded
// dataset scan (any thread count, with or without the decoded-chunk
// cache) is byte-identical to concatenating per-shard serial scans,
// which in turn match the uncached single-file path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kQualityScore, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeMixedData(const Schema& schema, size_t rows,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window;
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(r / 3));
    cols[1].AppendReal(rng.NextDouble());
    cols[2].AppendBinary("tag" + std::to_string(r % 5));
    if (window.empty() || rng.Bernoulli(0.3)) {
      window.insert(window.begin(), rng.UniformRange(0, 99));
      if (window.size() > 8) window.pop_back();
    }
    cols[3].AppendIntList(window);
  }
  return cols;
}

// ------------------------------------------------------------ manifest

TEST(ShardManifest, GlobalGroupIndexSkipsEmptyShards) {
  ShardManifest m({{"a", 100, 2}, {"empty", 0, 0}, {"b", 50, 3}});
  EXPECT_EQ(m.total_rows(), 150u);
  EXPECT_EQ(m.total_row_groups(), 5u);
  EXPECT_EQ(m.shard_group_begin(0), 0u);
  EXPECT_EQ(m.shard_group_begin(1), 2u);
  EXPECT_EQ(m.shard_group_begin(2), 2u);

  struct Want {
    uint32_t shard, local;
  } wants[] = {{0, 0}, {0, 1}, {2, 0}, {2, 1}, {2, 2}};
  for (uint32_t g = 0; g < 5; ++g) {
    auto ref = m.group(g);
    ASSERT_TRUE(ref.ok()) << "g=" << g;
    EXPECT_EQ(ref->shard, wants[g].shard) << "g=" << g;
    EXPECT_EQ(ref->local_group, wants[g].local) << "g=" << g;
  }
}

TEST(ShardManifest, GroupLookupIsBoundsChecked) {
  // Out-of-range probes must fail, not fabricate a shard index.
  ShardManifest empty;
  EXPECT_FALSE(empty.group(0).ok());
  ShardManifest one_empty({{"e", 0, 0}});
  EXPECT_FALSE(one_empty.group(0).ok());
  ShardManifest m({{"a", 10, 2}});
  ASSERT_TRUE(m.group(1).ok());
  EXPECT_FALSE(m.group(2).ok());
  EXPECT_FALSE(m.group(UINT32_MAX).ok());
}

TEST(ShardManifest, SerializeRoundTrips) {
  ShardManifest m(
      {{"t.shard-00000", 1 << 20, 16}, {"t.shard-00001", 123456, 2}});
  Buffer blob = m.Serialize();
  auto parsed = ShardManifest::Parse(blob.AsSlice());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, m);
  EXPECT_EQ(parsed->total_rows(), m.total_rows());
  EXPECT_EQ(parsed->group(17)->shard, 1u);
}

TEST(ShardManifest, V2CarriesDeletedCountsAndGenerations) {
  ShardManifest m({{"t.shard-00000", 1000, 4, 300, 0},
                   {"t.shard-00001.g2", 700, 2, 0, 2}},
                  /*generation=*/5);
  EXPECT_EQ(m.generation(), 5u);
  EXPECT_EQ(m.total_deleted_rows(), 300u);
  EXPECT_NEAR(m.shard(0).deleted_fraction(), 0.3, 1e-12);
  Buffer blob = m.Serialize();
  auto parsed = ShardManifest::Parse(blob.AsSlice());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, m);
  EXPECT_EQ(parsed->shard(0).deleted_rows, 300u);
  EXPECT_EQ(parsed->shard(1).generation, 2u);
  EXPECT_EQ(parsed->generation(), 5u);
}

TEST(ShardManifest, ParsesLegacyV1Blobs) {
  // Hand-built v1 blob: magic, version 1, count, then (name_len, name,
  // rows, groups) records without deleted/generation fields.
  std::vector<uint8_t> blob = {0x42, 0x53, 0x48, 0x4D, 1, 0, 0, 0};
  blob.push_back(2);  // count
  auto rec = [&](const std::string& name, uint8_t rows, uint8_t groups) {
    blob.push_back(static_cast<uint8_t>(name.size()));
    blob.insert(blob.end(), name.begin(), name.end());
    blob.push_back(rows);
    blob.push_back(groups);
  };
  rec("a", 100, 2);
  rec("b", 50, 1);
  auto parsed = ShardManifest::Parse(Slice(blob.data(), blob.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_shards(), 2u);
  EXPECT_EQ(parsed->total_rows(), 150u);
  EXPECT_EQ(parsed->generation(), 0u);
  EXPECT_EQ(parsed->shard(0).deleted_rows, 0u);
  EXPECT_EQ(parsed->shard(0).generation, 0u);
  EXPECT_EQ(parsed->shard(1).name, "b");
}

TEST(ShardManifest, ParseCorruptionMatrix) {
  // Truncate a valid v2 blob at EVERY byte boundary: each prefix must
  // come back as a clean error, never a crash or a bogus manifest.
  ShardManifest m({{"shard-a", 1000, 4, 250, 1}, {"shard-b", 500, 2, 0, 0}},
                  /*generation=*/3);
  Buffer blob = m.Serialize();
  for (size_t len = 0; len < blob.size(); ++len) {
    auto truncated = ShardManifest::Parse(Slice(blob.data(), len));
    EXPECT_FALSE(truncated.ok()) << "truncation at byte " << len;
  }
  // Trailing garbage after a complete manifest is corruption too.
  std::vector<uint8_t> padded(blob.data(), blob.data() + blob.size());
  padded.push_back(0x00);
  EXPECT_FALSE(ShardManifest::Parse(Slice(padded.data(), padded.size())).ok());

  // Implausible counts: deleted > rows, groups > u32, generation >
  // u32. Records are hand-built so the hostile varints are exact.
  auto v2_record = [](uint64_t rows, uint64_t groups, uint64_t deleted,
                      uint64_t gen) {
    std::vector<uint8_t> blob = {0x42, 0x53, 0x48, 0x4D, 2, 0, 0, 0};
    auto put = [&](uint64_t v) {
      while (v >= 0x80) {
        blob.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
      }
      blob.push_back(static_cast<uint8_t>(v));
    };
    put(0);  // dataset generation
    put(1);  // shard count
    put(1);  // name_len
    blob.push_back('s');
    put(rows);
    put(groups);
    put(deleted);
    put(gen);
    return blob;
  };
  auto parse = [&](const std::vector<uint8_t>& blob) {
    return ShardManifest::Parse(Slice(blob.data(), blob.size()));
  };
  ASSERT_TRUE(parse(v2_record(10, 1, 2, 1)).ok());  // the template is sane
  EXPECT_FALSE(parse(v2_record(10, 1, 200, 1)).ok());       // deleted > rows
  EXPECT_FALSE(parse(v2_record(10, 1ull << 33, 2, 1)).ok());  // groups > u32
  EXPECT_FALSE(parse(v2_record(10, 1, 2, 1ull << 33)).ok());  // gen > u32
}

TEST(ShardManifest, ParseRejectsGarbage) {
  EXPECT_FALSE(ShardManifest::Parse(Slice()).ok());
  std::vector<uint8_t> junk(16, 0xAB);
  EXPECT_FALSE(ShardManifest::Parse(Slice(junk.data(), junk.size())).ok());

  // Valid header but hostile varints: a huge shard count and a
  // name_len chosen to overflow `pos + name_len` must both come back
  // as Status::Corruption, not throw or read out of bounds.
  ShardManifest good({{"s", 1, 1}});
  Buffer blob = good.Serialize();
  std::vector<uint8_t> huge_count(blob.data(), blob.data() + 8);
  for (int i = 0; i < 9; ++i) huge_count.push_back(0xFF);  // count ~ 2^63
  huge_count.push_back(0x7F);
  EXPECT_FALSE(
      ShardManifest::Parse(Slice(huge_count.data(), huge_count.size())).ok());

  std::vector<uint8_t> huge_name(blob.data(), blob.data() + 8);
  huge_name.push_back(0x01);                               // count = 1
  for (int i = 0; i < 9; ++i) huge_name.push_back(0xFF);   // name_len huge
  huge_name.push_back(0x7F);
  EXPECT_FALSE(
      ShardManifest::Parse(Slice(huge_name.data(), huge_name.size())).ok());
}

// -------------------------------------------------------------- writer

TEST(ShardedWriter, SplitsStreamAtRowGroupAlignedTargets) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  ShardedWriterOptions opts;
  opts.rows_per_group = 100;
  opts.target_rows_per_shard = 250;  // closes at 300 (group boundary)
  opts.base_name = "t";
  opts.writer.rows_per_page = 32;
  ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
    return fs.NewWritableFile(name);
  });
  // Batch sizes deliberately misaligned with both group and shard.
  ASSERT_TRUE(writer.Append(MakeMixedData(schema, 730, 1)).ok());
  ASSERT_TRUE(writer.Append(MakeMixedData(schema, 270, 2)).ok());
  auto manifest = writer.Finish();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  ASSERT_EQ(manifest->num_shards(), 4u);
  EXPECT_EQ(manifest->total_rows(), 1000u);
  EXPECT_EQ(manifest->shard(0).num_rows, 300u);
  EXPECT_EQ(manifest->shard(0).num_row_groups, 3u);
  EXPECT_EQ(manifest->shard(3).num_rows, 100u);
  // Every shard is an independently readable Bullion file.
  for (size_t s = 0; s < manifest->num_shards(); ++s) {
    EXPECT_TRUE(fs.Exists(manifest->shard(s).name));
    auto r = TableReader::Open(*fs.NewReadableFile(manifest->shard(s).name));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->num_rows(), manifest->shard(s).num_rows);
  }
}

TEST(ShardedWriter, EmptyStreamMakesNoShards) {
  InMemoryFileSystem fs;
  ShardedTableWriter writer(MakeMixedSchema(), {},
                            [&](const std::string& name) {
                              return fs.NewWritableFile(name);
                            });
  auto manifest = writer.Finish();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->num_shards(), 0u);
  EXPECT_EQ(manifest->total_rows(), 0u);
}

// ------------------------------------------------------- reader fixture

/// Writes `total_rows` rows both as a sharded dataset and as one
/// single Bullion file with the same row-group size — the uncached
/// single-file ground truth.
struct DatasetFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  ShardManifest manifest;
  std::unique_ptr<ShardedTableReader> reader;

  DatasetFixture(size_t total_rows, uint32_t rows_per_group,
                 uint64_t target_rows_per_shard) {
    std::vector<ColumnVector> all = MakeMixedData(schema, total_rows, 42);
    ShardedWriterOptions opts;
    opts.rows_per_group = rows_per_group;
    opts.target_rows_per_shard = target_rows_per_shard;
    opts.base_name = "t";
    opts.writer.rows_per_page = 32;
    ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
      return fs.NewWritableFile(name);
    });
    EXPECT_TRUE(writer.Append(all).ok());
    manifest = *writer.Finish();

    // Single-file twin, same grouping.
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t r = 0; r < total_rows; r += rows_per_group) {
      std::vector<ColumnVector> g;
      for (const LeafColumn& leaf : schema.leaves()) {
        g.push_back(ColumnVector::ForLeaf(leaf));
      }
      for (size_t i = r; i < std::min(total_rows, r + rows_per_group); ++i) {
        for (size_t c = 0; c < g.size(); ++c) {
          g[c].AppendRowFrom(all[c], static_cast<int64_t>(i));
        }
      }
      groups.push_back(std::move(g));
    }
    WriterOptions wopts;
    wopts.rows_per_page = 32;
    auto f = fs.NewWritableFile("single");
    EXPECT_TRUE(WriteTableFile(f->get(), schema, groups, wopts).ok());

    auto ds = ShardedTableReader::Open(manifest, [&](const std::string& n) {
      return fs.NewReadableFile(n);
    });
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    reader = std::move(*ds);
  }

  /// Ground truth: per-shard serial scans, concatenated in shard order.
  std::vector<std::vector<ColumnVector>> SerialConcat(
      const std::vector<uint32_t>& projection) const {
    std::vector<std::vector<ColumnVector>> out;
    for (size_t s = 0; s < reader->num_shards(); ++s) {
      auto scan = ScanBuilder(reader->shard_reader(s))
                      .ColumnIndices(projection)
                      .Threads(1)
                      .Scan();
      EXPECT_TRUE(scan.ok());
      for (auto& g : scan->groups) out.push_back(std::move(g));
    }
    return out;
  }
};

// -------------------------------------------------------------- reader

TEST(ShardedReader, OpenValidatesManifestAgainstFooters) {
  DatasetFixture fx(500, 50, 100);
  EXPECT_EQ(fx.reader->num_rows(), 500u);
  EXPECT_EQ(fx.reader->num_row_groups(), 10u);
  EXPECT_EQ(fx.reader->num_columns(), 4u);

  // A manifest that lies about a shard's row count must be rejected.
  std::vector<ShardInfo> lying = fx.manifest.shards();
  lying[0].num_rows += 1;
  auto bad = ShardedTableReader::Open(ShardManifest(std::move(lying)),
                                      [&](const std::string& n) {
                                        return fx.fs.NewReadableFile(n);
                                      });
  EXPECT_FALSE(bad.ok());
}

TEST(ShardedReader, ScanIsByteIdenticalToPerShardSerialConcat) {
  DatasetFixture fx(900, 60, 180);  // 5 shards x 3 groups
  std::vector<uint32_t> projection = {0, 2, 3};
  auto truth = fx.SerialConcat(projection);
  ASSERT_EQ(truth.size(), fx.reader->num_row_groups());

  for (size_t threads : {1, 2, 4, 8}) {
    auto scan = DatasetScanBuilder(fx.reader.get())
                    .ColumnIndices(projection)
                    .Threads(threads)
                    .Scan();
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_EQ(scan->groups.size(), truth.size());
    for (size_t g = 0; g < truth.size(); ++g) {
      EXPECT_EQ(scan->groups[g], truth[g]) << "threads=" << threads
                                           << " global group " << g;
    }
  }
}

TEST(ShardedReader, ConcatColumnMatchesSingleFileRead) {
  DatasetFixture fx(700, 64, 128);
  auto single = *TableReader::Open(*fx.fs.NewReadableFile("single"));
  for (const char* name : {"uid", "score", "tag", "clk_seq"}) {
    auto expect = ReadFullColumn(single.get(), name);
    ASSERT_TRUE(expect.ok());
    auto scan = DatasetScanBuilder(fx.reader.get())
                    .Columns({name})
                    .Threads(4)
                    .Scan();
    ASSERT_TRUE(scan.ok());
    auto got = scan->ConcatColumn(0);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *expect) << name;
  }
}

TEST(ShardedReader, GlobalRowGroupRangeSpansShardEdges) {
  DatasetFixture fx(600, 50, 100);  // 3 shards x 2 groups + ...
  ASSERT_GE(fx.reader->num_shards(), 2u);
  // [1, 4) crosses the shard-0/shard-1 boundary at global group 2.
  auto truth = fx.SerialConcat({1, 3});
  auto scan = DatasetScanBuilder(fx.reader.get())
                  .ColumnIndices({1, 3})
                  .RowGroups(1, 4)
                  .Threads(3)
                  .Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->group_begin, 1u);
  ASSERT_EQ(scan->num_groups(), 3u);
  for (size_t g = 0; g < 3; ++g) {
    EXPECT_EQ(scan->groups[g], truth[g + 1]) << "global group " << g + 1;
  }
  // A well-formed range past the end is an empty scan, not an error.
  auto past = DatasetScanBuilder(fx.reader.get()).RowGroups(99, 99).Scan();
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past->num_groups(), 0u);
  EXPECT_FALSE(
      DatasetScanBuilder(fx.reader.get()).RowGroups(4, 1).Scan().ok());
}

TEST(ShardedReader, EmptyShardInTheMiddleContributesNoGroups) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  WriterOptions wopts;
  wopts.rows_per_page = 16;
  auto a = MakeMixedData(schema, 80, 1);
  auto b = MakeMixedData(schema, 40, 2);
  ASSERT_TRUE(
      WriteTableFile(fs.NewWritableFile("a")->get(), schema, {a}, wopts).ok());
  ASSERT_TRUE(
      WriteTableFile(fs.NewWritableFile("mid")->get(), schema, {}, wopts).ok());
  ASSERT_TRUE(
      WriteTableFile(fs.NewWritableFile("b")->get(), schema, {b}, wopts).ok());

  std::vector<std::unique_ptr<RandomAccessFile>> files;
  for (const char* n : {"a", "mid", "b"}) {
    files.push_back(*fs.NewReadableFile(n));
  }
  auto ds = ShardedTableReader::Open(std::move(files));
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ((*ds)->num_shards(), 3u);
  EXPECT_EQ((*ds)->num_rows(), 120u);
  EXPECT_EQ((*ds)->num_row_groups(), 2u);

  auto scan = DatasetScanBuilder(ds->get()).Threads(2).Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rows(), 120u);
  ColumnVector expect(PhysicalType::kInt64, 0);
  expect.AppendAllFrom(a[0]);
  expect.AppendAllFrom(b[0]);
  EXPECT_EQ(*scan->ConcatColumn(0), expect);
}

TEST(ShardedReader, SingleRowShards) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  ShardedWriterOptions opts;
  opts.rows_per_group = 1;
  opts.target_rows_per_shard = 1;
  opts.base_name = "tiny";
  opts.writer.rows_per_page = 4;
  ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
    return fs.NewWritableFile(name);
  });
  auto data = MakeMixedData(schema, 5, 9);
  ASSERT_TRUE(writer.Append(data).ok());
  auto manifest = writer.Finish();
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->num_shards(), 5u);

  auto ds = ShardedTableReader::Open(*manifest, [&](const std::string& n) {
    return fs.NewReadableFile(n);
  });
  ASSERT_TRUE(ds.ok());
  auto scan = DatasetScanBuilder(ds->get()).Threads(4).Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_rows(), 5u);
  for (size_t c = 0; c < data.size(); ++c) {
    EXPECT_EQ(*scan->ConcatColumn(c), data[c]) << "column " << c;
  }
}

TEST(ShardedReader, RejectsMismatchedShardSchemas) {
  InMemoryFileSystem fs;
  Schema a = MakeMixedSchema();
  Schema b({{"other", DataType::Primitive(PhysicalType::kInt64),
             LogicalType::kPlain, false}});
  WriterOptions wopts;
  ASSERT_TRUE(WriteTableFile(fs.NewWritableFile("a")->get(), a,
                             {MakeMixedData(a, 10, 1)}, wopts)
                  .ok());
  ColumnVector col(PhysicalType::kInt64, 0);
  col.AppendInt(1);
  ASSERT_TRUE(
      WriteTableFile(fs.NewWritableFile("b")->get(), b, {{col}}, wopts).ok());
  std::vector<std::unique_ptr<RandomAccessFile>> files;
  files.push_back(*fs.NewReadableFile("a"));
  files.push_back(*fs.NewReadableFile("b"));
  EXPECT_FALSE(ShardedTableReader::Open(std::move(files)).ok());
}

// --------------------------------------------------------------- cache

TEST(DecodedChunkCache, WarmEpochIsByteIdenticalAndIssuesZeroPreads) {
  DatasetFixture fx(800, 50, 200);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());

  auto cold = DatasetScanBuilder(fx.reader.get())
                  .Threads(4)
                  .Cache(&cache)
                  .Scan();
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);

  fx.fs.ResetStats();
  auto warm = DatasetScanBuilder(fx.reader.get())
                  .Threads(4)
                  .Cache(&cache)
                  .Scan();
  ASSERT_TRUE(warm.ok());
  // Every chunk was cached: the warm epoch does zero I/O...
  EXPECT_EQ(fx.fs.stats().read_ops.load(), 0u);
  EXPECT_EQ(fx.fs.stats().bytes_read.load(), 0u);
  EXPECT_EQ(fx.fs.stats().cache_misses.load(), 0u);
  EXPECT_GT(fx.fs.stats().cache_hits.load(), 0u);
  // ...and the output is still byte-identical.
  EXPECT_EQ(warm->groups, cold->groups);

  auto uncached = DatasetScanBuilder(fx.reader.get()).Threads(1).Scan();
  ASSERT_TRUE(uncached.ok());
  EXPECT_EQ(warm->groups, uncached->groups);
}

TEST(DecodedChunkCache, PartiallyCachedGroupsMergeCacheAndFreshReads) {
  DatasetFixture fx(600, 60, 180);
  DecodedChunkCache cache(64 << 20);

  // Warm only column 1, then scan {0, 1, 3}: every group is "mixed" —
  // one slot from the cache, two freshly read.
  auto prime = DatasetScanBuilder(fx.reader.get())
                   .ColumnIndices({1})
                   .Cache(&cache)
                   .Scan();
  ASSERT_TRUE(prime.ok());
  uint64_t misses_after_prime = cache.misses();

  auto mixed = DatasetScanBuilder(fx.reader.get())
                   .ColumnIndices({0, 1, 3})
                   .Threads(4)
                   .Cache(&cache)
                   .Scan();
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(cache.hits(), fx.reader->num_row_groups());
  EXPECT_EQ(cache.misses(), misses_after_prime +
                                2 * fx.reader->num_row_groups());

  auto truth = fx.SerialConcat({0, 1, 3});
  ASSERT_EQ(mixed->groups.size(), truth.size());
  for (size_t g = 0; g < truth.size(); ++g) {
    EXPECT_EQ(mixed->groups[g], truth[g]) << "global group " << g;
  }
}

TEST(DecodedChunkCache, EvictsUnderTinyByteBudgetAndStaysCorrect) {
  DatasetFixture fx(800, 50, 200);
  // Budget ~2 chunks: constant churn, most probes miss, and the cache
  // must never hold more than its budget.
  auto probe = DatasetScanBuilder(fx.reader.get()).ColumnIndices({3}).Scan();
  ASSERT_TRUE(probe.ok());
  size_t one_chunk = ApproxColumnVectorBytes(probe->groups[0][0]);
  ASSERT_GT(one_chunk, 0u);
  DecodedChunkCache cache(2 * one_chunk + one_chunk / 2);

  auto uncached = DatasetScanBuilder(fx.reader.get()).Scan();
  ASSERT_TRUE(uncached.ok());
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto scan = DatasetScanBuilder(fx.reader.get())
                    .Threads(4)
                    .Cache(&cache)
                    .Scan();
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->groups, uncached->groups) << "epoch " << epoch;
    EXPECT_LE(cache.size_bytes(), cache.capacity_bytes());
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

TEST(DecodedChunkCache, OversizedChunkIsNotCached) {
  DecodedChunkCache cache(8);  // 8 bytes: smaller than any real chunk
  ColumnVector big(PhysicalType::kInt64, 0);
  for (int i = 0; i < 100; ++i) big.AppendInt(i);
  cache.Insert(ChunkCacheKey{0, 0, 0, true}, big);
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  ColumnVector out;
  EXPECT_FALSE(cache.Lookup(ChunkCacheKey{0, 0, 0, true}, &out));
}

TEST(DecodedChunkCache, LruKeepsHotEntriesUnderPressure) {
  ColumnVector v(PhysicalType::kInt64, 0);
  for (int i = 0; i < 4; ++i) v.AppendInt(i);
  size_t bytes = ApproxColumnVectorBytes(v);
  DecodedChunkCache cache(2 * bytes);  // room for exactly two entries

  ChunkCacheKey a{0, 0, 0, true}, b{0, 0, 1, true}, c{0, 0, 2, true};
  cache.Insert(a, v);
  cache.Insert(b, v);
  ColumnVector out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // refresh a: b is now coldest
  cache.Insert(c, v);                  // evicts b
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(DecodedChunkCache, KeySeparatesReadOptionVariants) {
  ColumnVector v(PhysicalType::kInt64, 0);
  v.AppendInt(7);
  DecodedChunkCache cache(1 << 20);
  cache.Insert(ChunkCacheKey{1, 2, 3, true, false}, v);
  ColumnVector out;
  // filter_deleted and verify_checksums both change what a decode
  // produces/checks; neither variant may serve the other's entry.
  EXPECT_FALSE(cache.Lookup(ChunkCacheKey{1, 2, 3, false, false}, &out));
  EXPECT_FALSE(cache.Lookup(ChunkCacheKey{1, 2, 3, true, true}, &out));
  EXPECT_TRUE(cache.Lookup(ChunkCacheKey{1, 2, 3, true, false}, &out));
  EXPECT_EQ(out, v);
}

TEST(ShardedReader, ConcurrentScansShareOnePoolAndCache) {
  // TSAN target: two dataset scans racing on one shared pool + cache.
  DatasetFixture fx(600, 50, 150);
  ThreadPool pool(4);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());
  auto run = [&] {
    return DatasetScanBuilder(fx.reader.get())
        .Pool(&pool)
        .Cache(&cache)
        .Scan();
  };
  auto first = run();
  ASSERT_TRUE(first.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> scanners;
  scanners.reserve(4);
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&] {
      auto scan = run();
      if (!scan.ok() || scan->groups != first->groups) failures.fetch_add(1);
    });
  }
  for (auto& t : scanners) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace bullion

// Page-layer tests: deletable encoding decision tree, sparse-delta
// pages, page corruption handling, and float/binary page round-trips.

#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/cascade.h"
#include "format/page.h"

namespace bullion {
namespace {

ColumnVector IntColumn(const std::vector<int64_t>& values) {
  ColumnVector col(PhysicalType::kInt64, 0);
  for (int64_t v : values) col.AppendInt(v);
  return col;
}

TEST(DeletableEncoding, DecisionTreePicksExpectedFamilies) {
  Random rng(3);
  struct Case {
    const char* name;
    std::vector<int64_t> values;
    std::vector<EncodingType> acceptable;
  };
  std::vector<Case> cases;
  {
    Case c{"low_cardinality", {}, {EncodingType::kDictionary,
                                   EncodingType::kFixedBitWidth}};
    for (int i = 0; i < 1000; ++i) c.values.push_back(rng.UniformRange(0, 5));
    cases.push_back(std::move(c));
  }
  {
    Case c{"long_runs", {}, {EncodingType::kRle}};
    for (int i = 0; i < 1000; ++i) c.values.push_back(i / 100);
    cases.push_back(std::move(c));
  }
  {
    Case c{"small_nonneg", {}, {EncodingType::kVarint,
                                EncodingType::kFixedBitWidth,
                                EncodingType::kDictionary,
                                EncodingType::kForDelta}};
    for (int i = 0; i < 1000; ++i) {
      c.values.push_back(rng.UniformRange(0, 100000));
    }
    cases.push_back(std::move(c));
  }
  {
    Case c{"negatives_wide", {}, {EncodingType::kForDelta,
                                  EncodingType::kTrivial}};
    for (int i = 0; i < 1000; ++i) {
      c.values.push_back(static_cast<int64_t>(rng.Next()));
    }
    cases.push_back(std::move(c));
  }
  for (const Case& c : cases) {
    BufferBuilder out;
    uint8_t encoding = 0;
    ASSERT_TRUE(EncodeDeletableIntValues(c.values, /*allow_rle=*/true, &out,
                                         &encoding)
                    .ok())
        << c.name;
    EncodingType chosen = static_cast<EncodingType>(encoding);
    bool acceptable = false;
    for (EncodingType t : c.acceptable) {
      if (t == chosen) acceptable = true;
    }
    EXPECT_TRUE(acceptable) << c.name << " chose "
                            << EncodingTypeName(chosen);
    // Whatever was chosen must round-trip.
    Buffer buf = out.Finish();
    SliceReader reader(buf.AsSlice());
    std::vector<int64_t> decoded;
    ASSERT_TRUE(DecodeIntBlock(&reader, &decoded).ok()) << c.name;
    EXPECT_EQ(decoded, c.values) << c.name;
  }
}

TEST(DeletableEncoding, RleSuppressedWhenDisallowed) {
  std::vector<int64_t> runs;
  for (int i = 0; i < 1000; ++i) runs.push_back(i / 100);
  BufferBuilder out;
  uint8_t encoding = 0;
  ASSERT_TRUE(
      EncodeDeletableIntValues(runs, /*allow_rle=*/false, &out, &encoding)
          .ok());
  EXPECT_NE(static_cast<EncodingType>(encoding), EncodingType::kRle);
}

TEST(Page, GenericIntPageRoundTrip) {
  Random rng(5);
  std::vector<int64_t> values(777);
  for (auto& v : values) v = rng.UniformRange(-100, 100);
  ColumnVector col = IntColumn(values);
  PageEncodeOptions opts;
  auto page = EncodePage(col, 100, 600, opts);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->row_count, 500u);
  ColumnVector out(PhysicalType::kInt64, 0);
  ASSERT_TRUE(DecodePage(page->data.AsSlice(), &out).ok());
  ASSERT_EQ(out.num_rows(), 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(out.int_values()[i], values[100 + i]);
  }
}

TEST(Page, SparseDeltaPageForIdSequences) {
  // Realistic clk_seq_cids shape: long window, wide id universe. (With
  // tiny windows the generic cascade wins — a legitimate crossover the
  // sweep in bench_sparse_delta maps out.)
  Random rng(11);
  ColumnVector col(PhysicalType::kInt64, 1);
  std::vector<int64_t> window(64);
  for (auto& x : window) x = rng.UniformRange(0, 1 << 30);
  for (int r = 0; r < 300; ++r) {
    if (r % 2 == 0) {
      window.insert(window.begin(), rng.UniformRange(0, 1 << 30));
      window.pop_back();
    }
    col.AppendIntList(window);
  }
  PageEncodeOptions opts;
  opts.use_sparse_delta = true;
  auto sparse_page = EncodePage(col, 0, 300, opts);
  ASSERT_TRUE(sparse_page.ok());
  EXPECT_EQ(static_cast<EncodingType>(sparse_page->encoding),
            EncodingType::kSparseDelta);

  PageEncodeOptions generic;
  auto generic_page = EncodePage(col, 0, 300, generic);
  ASSERT_TRUE(generic_page.ok());
  EXPECT_LT(sparse_page->data.size(), generic_page->data.size());

  ColumnVector out(PhysicalType::kInt64, 1);
  ASSERT_TRUE(DecodePage(sparse_page->data.AsSlice(), &out).ok());
  EXPECT_EQ(out, ColumnVector(col));
}

TEST(Page, FloatAndBinaryPages) {
  Random rng(9);
  {
    ColumnVector col(PhysicalType::kFloat64, 0);
    for (int i = 0; i < 400; ++i) col.AppendReal(rng.NextGaussian());
    auto page = EncodePage(col, 0, 400, {});
    ASSERT_TRUE(page.ok());
    ColumnVector out(PhysicalType::kFloat64, 0);
    ASSERT_TRUE(DecodePage(page->data.AsSlice(), &out).ok());
    EXPECT_EQ(out, col);
  }
  {
    ColumnVector col(PhysicalType::kBinary, 1);
    for (int i = 0; i < 200; ++i) {
      col.AppendBinaryList({"a" + std::to_string(i), "bb"});
    }
    auto page = EncodePage(col, 0, 200, {});
    ASSERT_TRUE(page.ok());
    ColumnVector out(PhysicalType::kBinary, 1);
    ASSERT_TRUE(DecodePage(page->data.AsSlice(), &out).ok());
    EXPECT_EQ(out, col);
  }
}

TEST(Page, CorruptPageFailsCleanly) {
  ColumnVector col = IntColumn({1, 2, 3, 4, 5, 6, 7, 8});
  auto page = EncodePage(col, 0, 8, {});
  ASSERT_TRUE(page.ok());

  // Truncations at every prefix must return an error, never crash.
  for (size_t len = 0; len < page->data.size(); ++len) {
    ColumnVector out(PhysicalType::kInt64, 0);
    Status st = DecodePage(page->data.AsSlice().SubSlice(0, len), &out);
    // Some prefixes may decode an empty page "successfully" if the
    // header says zero; the key property is no crash and no garbage
    // rows beyond the encoded count.
    if (st.ok()) {
      EXPECT_LE(out.num_rows(), 8u);
    }
  }

  // Unknown page format byte.
  std::vector<uint8_t> bytes(page->data.data(),
                             page->data.data() + page->data.size());
  bytes[0] = 0x77;
  ColumnVector out(PhysicalType::kInt64, 0);
  EXPECT_FALSE(DecodePage(Slice(bytes.data(), bytes.size()), &out).ok());
}

TEST(Page, DepthMismatchRejected) {
  ColumnVector col = IntColumn({1, 2, 3});
  auto page = EncodePage(col, 0, 3, {});
  ASSERT_TRUE(page.ok());
  ColumnVector wrong_depth(PhysicalType::kInt64, 1);
  EXPECT_FALSE(DecodePage(page->data.AsSlice(), &wrong_depth).ok());
}

}  // namespace
}  // namespace bullion

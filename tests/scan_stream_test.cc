// Unified streaming scan tests: the bullion::Scan front door over both
// source kinds, zone-map predicate pushdown, and the redesign's two
// headline claims — (1) draining the stream is byte-identical to the
// legacy materializing scans at any thread count, and (2) a selective
// predicate provably skips preads (groups_pruned / shards_pruned > 0
// with read_ops below the unfiltered scan) while residual evaluation
// keeps results exact, including on version-1 footers with no stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kPlain, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  return Schema(std::move(fields));
}

/// Rows with strictly increasing uid (uid == global row index), so
/// uid predicates are selective across row groups and shards:
/// score = uid / 1000.0.
std::vector<ColumnVector> MakeOrderedData(const Schema& schema, size_t rows,
                                          size_t first_uid) {
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (size_t r = 0; r < rows; ++r) {
    int64_t uid = static_cast<int64_t>(first_uid + r);
    cols[0].AppendInt(uid);
    cols[1].AppendReal(static_cast<double>(uid) / 1000.0);
    cols[2].AppendBinary("tag" + std::to_string(uid % 5));
    cols[3].AppendIntList({uid, uid + 1});
  }
  return cols;
}

/// One Bullion file of `total_rows` ordered rows in fixed-size groups.
struct FileFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::unique_ptr<TableReader> reader;
  size_t total_rows;
  uint32_t rows_per_group;

  FileFixture(size_t total_rows, uint32_t rows_per_group,
              bool write_chunk_stats = true)
      : total_rows(total_rows), rows_per_group(rows_per_group) {
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t r = 0; r < total_rows; r += rows_per_group) {
      groups.push_back(MakeOrderedData(
          schema, std::min<size_t>(rows_per_group, total_rows - r), r));
    }
    WriterOptions opts;
    opts.rows_per_page = 16;
    opts.write_chunk_stats = write_chunk_stats;
    auto f = fs.NewWritableFile("t");
    EXPECT_TRUE(WriteTableFile(f->get(), schema, groups, opts).ok());
    reader = *TableReader::Open(*fs.NewReadableFile("t"));
  }
};

/// The same ordered rows as a sharded dataset (uid ranges are disjoint
/// across shards, so uid predicates prune whole shards).
struct DatasetFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  ShardManifest manifest;
  std::unique_ptr<ShardedTableReader> reader;

  DatasetFixture(size_t total_rows, uint32_t rows_per_group,
                 uint64_t rows_per_shard) {
    ShardedWriterOptions opts;
    opts.rows_per_group = rows_per_group;
    opts.target_rows_per_shard = rows_per_shard;
    opts.base_name = "t";
    opts.writer.rows_per_page = 16;
    ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
      return fs.NewWritableFile(name);
    });
    EXPECT_TRUE(writer.Append(MakeOrderedData(schema, total_rows, 0)).ok());
    manifest = *writer.Finish();
    reader = *ShardedTableReader::Open(manifest, [&](const std::string& n) {
      return fs.NewReadableFile(n);
    });
  }
};

/// Drains a stream; fails the test on stream error.
std::vector<RowBatch> Drain(BatchStream* stream) {
  std::vector<RowBatch> batches;
  RowBatch batch;
  for (;;) {
    auto more = stream->Next(&batch);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    batches.push_back(std::move(batch));
  }
  return batches;
}

uint64_t TotalRows(const std::vector<RowBatch>& batches) {
  uint64_t rows = 0;
  for (const RowBatch& b : batches) rows += b.num_rows();
  return rows;
}

// ------------------------------------------------- byte-identity claims

TEST(ScanStream, SingleFileStreamMatchesLegacyScanAtAnyThreadCount) {
  FileFixture fx(600, 50);
  auto truth = ScanBuilder(fx.reader.get()).Threads(1).Scan();
  ASSERT_TRUE(truth.ok());
  for (size_t threads : {1, 2, 4, 8}) {
    auto stream = Scan(fx.reader.get()).Threads(threads).Stream();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    EXPECT_EQ((*stream)->columns(), truth->columns);
    std::vector<RowBatch> batches = Drain(stream->get());
    ASSERT_EQ(batches.size(), truth->groups.size()) << threads;
    for (size_t g = 0; g < batches.size(); ++g) {
      EXPECT_EQ(batches[g].group, truth->group_begin + g);
      EXPECT_EQ(batches[g].columns, truth->groups[g])
          << "threads=" << threads << " group " << g;
    }
  }
}

TEST(ScanStream, DatasetStreamMatchesLegacyScanAtAnyThreadCount) {
  DatasetFixture fx(600, 50, 200);
  ASSERT_GT(fx.manifest.num_shards(), 1u);
  auto truth = DatasetScanBuilder(fx.reader.get()).Threads(1).Scan();
  ASSERT_TRUE(truth.ok());
  for (size_t threads : {1, 2, 4, 8}) {
    auto stream = Scan(fx.reader.get()).Threads(threads).Stream();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    std::vector<RowBatch> batches = Drain(stream->get());
    ASSERT_EQ(batches.size(), truth->groups.size()) << threads;
    for (size_t g = 0; g < batches.size(); ++g) {
      EXPECT_EQ(batches[g].columns, truth->groups[g])
          << "threads=" << threads << " group " << g;
    }
  }
}

TEST(ScanStream, BatchRowsBoundsEveryBatch) {
  FileFixture fx(600, 50);
  auto full = ReadFullColumn(fx.reader.get(), "uid");
  ASSERT_TRUE(full.ok());
  auto stream =
      Scan(fx.reader.get()).Columns({"uid"}).BatchRows(37).Threads(2).Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  ColumnVector concat(PhysicalType::kInt64, 0);
  for (const RowBatch& b : batches) {
    ASSERT_EQ(b.columns.size(), 1u);
    EXPECT_LE(b.num_rows(), 37u);
    EXPECT_GT(b.num_rows(), 0u);
    concat.AppendAllFrom(b.columns[0]);
  }
  EXPECT_EQ(concat, *full);
}

// ------------------------------------------------- predicate pushdown

TEST(ScanStream, SelectivePredicateSkipsPreads) {
  FileFixture fx(600, 50);  // 12 groups; uid in [g*50, g*50+49]
  IoStats& io = fx.fs.stats();
  io.Reset();
  auto unfiltered = Scan(fx.reader.get()).Columns({"uid", "score"}).Stream();
  ASSERT_TRUE(unfiltered.ok());
  Drain(unfiltered->get());
  uint64_t unfiltered_reads = io.read_ops.load();
  ASSERT_GT(unfiltered_reads, 0u);

  io.Reset();
  IoStats scan_stats;
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid", "score"})
                    .Filter("uid", CompareOp::kGe, 550)
                    .Stats(&scan_stats)
                    .Stream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<RowBatch> batches = Drain(stream->get());

  // Only the last group (uid 550..599) can match.
  EXPECT_EQ(scan_stats.groups_pruned.load(), 11u);
  EXPECT_GT(scan_stats.batches_emitted.load(), 0u);
  EXPECT_LT(io.read_ops.load(), unfiltered_reads);
  EXPECT_EQ(TotalRows(batches), 50u);
  for (const RowBatch& b : batches) {
    for (int64_t uid : b.columns[0].int_values()) EXPECT_GE(uid, 550);
  }
}

TEST(ScanStream, ResidualEvaluationIsExact) {
  FileFixture fx(600, 50);
  // Cuts through the middle of group 5: zone maps alone cannot answer.
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid", "tag"})
                    .Filter("uid", CompareOp::kGt, 275)
                    .Filter("score", CompareOp::kLt, 0.300)  // uid < 300
                    .Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  std::vector<int64_t> got;
  for (const RowBatch& b : batches) {
    for (int64_t uid : b.columns[0].int_values()) got.push_back(uid);
  }
  std::vector<int64_t> want;
  for (int64_t uid = 276; uid < 300; ++uid) want.push_back(uid);
  EXPECT_EQ(got, want);
  // The filter-only column (score) is not emitted.
  for (const RowBatch& b : batches) EXPECT_EQ(b.columns.size(), 2u);
}

TEST(ScanStream, DatasetPredicatePrunesWholeShards) {
  DatasetFixture fx(600, 50, 200);  // 3 shards x 200 rows
  ASSERT_EQ(fx.manifest.num_shards(), 3u);
  // The writer published aggregated zone maps in the manifest.
  EXPECT_FALSE(fx.manifest.shard(0).column_stats.empty());
  EXPECT_TRUE(fx.manifest.shard(0).column_zone(0).valid);

  IoStats scan_stats;
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid"})
                    .Filter("uid", CompareOp::kLt, 150)
                    .Threads(2)
                    .Stats(&scan_stats)
                    .Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  EXPECT_EQ(scan_stats.shards_pruned.load(), 2u);  // shards 1 and 2
  EXPECT_EQ(TotalRows(batches), 150u);
  for (const RowBatch& b : batches) {
    for (int64_t uid : b.columns[0].int_values()) EXPECT_LT(uid, 150);
  }
}

TEST(ScanStream, ContradictoryPredicatesYieldEmptyStreamWithSchema) {
  FileFixture fx(600, 50);
  IoStats scan_stats;
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid", "score"})
                    .Filter("uid", CompareOp::kGt, 400)
                    .Filter("uid", CompareOp::kLt, 300)
                    .Stats(&scan_stats)
                    .Stream();
  ASSERT_TRUE(stream.ok());
  // The schema is available even though nothing survives.
  EXPECT_EQ((*stream)->columns(), (std::vector<uint32_t>{0, 1}));
  ASSERT_EQ((*stream)->column_records().size(), 2u);
  EXPECT_EQ((*stream)->column_records()[0].physical,
            static_cast<uint8_t>(PhysicalType::kInt64));
  std::vector<RowBatch> batches = Drain(stream->get());
  EXPECT_EQ(TotalRows(batches), 0u);
  // Every group fails one of the two zone checks: all pruned, no I/O.
  EXPECT_EQ(scan_stats.groups_pruned.load(), 12u);
  EXPECT_EQ(scan_stats.batches_emitted.load(), 0u);
}

TEST(ScanStream, FooterWithoutStatsPrunesNothingButStaysExact) {
  FileFixture fx(600, 50, /*write_chunk_stats=*/false);
  // The file really is a legacy version-1 footer.
  EXPECT_FALSE(fx.reader->footer().has_chunk_stats());
  EXPECT_FALSE(fx.reader->footer().chunk_zone_map(0, 0).valid);

  IoStats scan_stats;
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid"})
                    .Filter("uid", CompareOp::kGe, 550)
                    .Stats(&scan_stats)
                    .Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  EXPECT_EQ(scan_stats.groups_pruned.load(), 0u);  // nothing to prune with
  EXPECT_EQ(TotalRows(batches), 50u);              // residual keeps it exact
  for (const RowBatch& b : batches) {
    for (int64_t uid : b.columns[0].int_values()) EXPECT_GE(uid, 550);
  }
  // And the legacy materializing scan over a v1 footer still works.
  auto legacy = ScanBuilder(fx.reader.get()).Threads(2).Scan();
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->num_rows(), 600u);
}

TEST(ScanStream, PruningNeverLosesRowsAcrossSelectivities) {
  DatasetFixture fx(600, 50, 200);
  for (int64_t cut : {-1, 0, 37, 299, 300, 550, 599, 600, 10000}) {
    auto stream = Scan(fx.reader.get())
                      .Columns({"uid"})
                      .Filter("uid", CompareOp::kGe, cut)
                      .Stream();
    ASSERT_TRUE(stream.ok());
    uint64_t got = TotalRows(Drain(stream->get()));
    uint64_t want = cut <= 0 ? 600 : (cut >= 600 ? 0 : 600 - cut);
    EXPECT_EQ(got, want) << "cut=" << cut;
  }
}

// ------------------------------------------------- validation edges

TEST(ScanStream, EmptyProjectionScansAllColumns) {
  FileFixture fx(100, 50);
  auto stream = Scan(fx.reader.get()).Columns({}).Stream();
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->columns(), (std::vector<uint32_t>{0, 1, 2, 3}));
  std::vector<RowBatch> batches = Drain(stream->get());
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].columns.size(), 4u);
}

TEST(ScanStream, DuplicateProjectionColumnsEmitDuplicateSlots) {
  FileFixture fx(100, 50);
  auto stream = Scan(fx.reader.get()).ColumnIndices({0, 0}).Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  for (const RowBatch& b : batches) {
    ASSERT_EQ(b.columns.size(), 2u);
    EXPECT_EQ(b.columns[0], b.columns[1]);
  }
}

TEST(ScanStream, PredicateOnUnknownColumnIsNotFound) {
  FileFixture fx(100, 50);
  auto stream = Scan(fx.reader.get())
                    .Filter("no_such_column", CompareOp::kEq, 1)
                    .Stream();
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsNotFound()) << stream.status().ToString();
}

TEST(ScanStream, PredicateOnUnsupportedColumnTypeIsRejected) {
  FileFixture fx(100, 50);
  for (const char* col : {"tag", "clk_seq"}) {  // binary, list
    auto stream =
        Scan(fx.reader.get()).Filter(col, CompareOp::kEq, 1).Stream();
    ASSERT_FALSE(stream.ok()) << col;
    EXPECT_TRUE(stream.status().IsInvalidArgument()) << col;
  }
}

TEST(ScanStream, ProjectionValidationMatchesLegacyFrontDoors) {
  FileFixture fx(100, 50);
  DatasetFixture ds(100, 50, 100);
  // Unknown names: clear NotFound from every front door.
  EXPECT_TRUE(Scan(fx.reader.get()).Columns({"nope"}).Stream().status()
                  .IsNotFound());
  EXPECT_TRUE(ScanBuilder(fx.reader.get()).Columns({"nope"}).Scan().status()
                  .IsNotFound());
  EXPECT_TRUE(DatasetScanBuilder(ds.reader.get()).Columns({"nope"}).Scan()
                  .status().IsNotFound());
  // Out-of-range indices: clear InvalidArgument everywhere.
  EXPECT_TRUE(Scan(fx.reader.get()).ColumnIndices({99}).Stream().status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ScanBuilder(fx.reader.get()).ColumnIndices({99}).Scan().status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DatasetScanBuilder(ds.reader.get()).ColumnIndices({99}).Scan()
                  .status().IsInvalidArgument());
  // Inverted row-group ranges.
  EXPECT_TRUE(Scan(fx.reader.get()).RowGroups(2, 1).Stream().status()
                  .IsInvalidArgument());
  // A well-formed range past the end is an empty stream, not an error.
  auto past = Scan(fx.reader.get()).RowGroups(50, 60).Stream();
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(TotalRows(Drain(past->get())), 0u);
}

TEST(ScanStream, CacheOnSingleFileSourceIsRejected) {
  FileFixture fx(100, 50);
  DecodedChunkCache cache(1 << 20);
  auto stream = Scan(fx.reader.get()).Cache(&cache).Stream();
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsInvalidArgument());
}

// ------------------------------------------------- cache + concurrency

TEST(ScanStream, WarmCacheEpochIssuesZeroPreads) {
  DatasetFixture fx(600, 50, 200);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());
  auto epoch = [&] {
    auto stream = Scan(fx.reader.get())
                      .Columns({"uid", "score"})
                      .Threads(2)
                      .Cache(&cache)
                      .Stream();
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    std::vector<RowBatch> batches = Drain(stream->get());
    EXPECT_EQ(TotalRows(batches), 600u);
  };
  epoch();  // cold: fills the cache
  fx.fs.stats().Reset();
  epoch();  // warm: every chunk served decoded from the LRU
  EXPECT_EQ(fx.fs.stats().read_ops.load(), 0u);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(ScanStream, FilteredScanSharesCacheWithUnfilteredScan) {
  DatasetFixture fx(600, 50, 200);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());
  auto warm = Scan(fx.reader.get()).Columns({"uid"}).Cache(&cache).Stream();
  ASSERT_TRUE(warm.ok());
  Drain(warm->get());
  fx.fs.stats().Reset();
  // The filtered scan's surviving groups hit the same cached chunks.
  auto stream = Scan(fx.reader.get())
                    .Columns({"uid"})
                    .Filter("uid", CompareOp::kLt, 150)
                    .Cache(&cache)
                    .Stream();
  ASSERT_TRUE(stream.ok());
  std::vector<RowBatch> batches = Drain(stream->get());
  EXPECT_EQ(TotalRows(batches), 150u);
  EXPECT_EQ(fx.fs.stats().read_ops.load(), 0u);
}

TEST(ScanStream, ConcurrentStreamsShareOnePoolAndCache) {
  DatasetFixture fx(600, 50, 200);
  DecodedChunkCache cache(64 << 20, &fx.fs.stats());
  ThreadPool pool(4);
  auto truth = DatasetScanBuilder(fx.reader.get()).Threads(1).Scan();
  ASSERT_TRUE(truth.ok());
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      auto stream = Scan(fx.reader.get())
                        .Pool(&pool)
                        .Cache(&cache)
                        .Filter("uid", CompareOp::kGe, 0)  // keeps everything
                        .Stream();
      ASSERT_TRUE(stream.ok());
      std::vector<RowBatch> batches;
      RowBatch batch;
      for (;;) {
        auto more = (*stream)->Next(&batch);
        ASSERT_TRUE(more.ok()) << more.status().ToString();
        if (!*more) break;
        batches.push_back(std::move(batch));
      }
      ASSERT_EQ(batches.size(), truth->groups.size());
      for (size_t g = 0; g < batches.size(); ++g) {
        EXPECT_EQ(batches[g].columns, truth->groups[g]);
      }
    });
  }
  for (std::thread& th : consumers) th.join();
}

// ------------------------------------------------- schema evolution

TEST(ScanStream, FilterOnEvolvedColumnPrunesPredatingShards) {
  DatasetFixture fx(400, 50, 200);  // 2 shards without the new column
  auto read_fn = [&](const std::string& n) { return fx.fs.NewReadableFile(n); };
  auto write_fn = [&](const std::string& n) {
    return fx.fs.NewWritableFile(n);
  };
  // Append a shard that adds a nullable trailing "label" column.
  Schema evolved({
      Field{"uid", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, true},
      Field{"score", DataType::Primitive(PhysicalType::kFloat64),
            LogicalType::kPlain, false},
      Field{"tag", DataType::Primitive(PhysicalType::kBinary),
            LogicalType::kPlain, false},
      Field{"clk_seq",
            DataType::List(DataType::Primitive(PhysicalType::kInt64)),
            LogicalType::kIdSequence, false},
      Field{"label", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, false, /*nullable=*/true},
  });
  DatasetAppendOptions aopts;
  aopts.writer.rows_per_group = 50;
  aopts.writer.target_rows_per_shard = 200;
  aopts.writer.writer.rows_per_page = 16;
  auto appender = DatasetAppender::Open(fx.manifest, evolved, read_fn,
                                        write_fn, aopts);
  ASSERT_TRUE(appender.ok()) << appender.status().ToString();
  std::vector<ColumnVector> batch = MakeOrderedData(fx.schema, 200, 400);
  ColumnVector label(PhysicalType::kInt64, 0);
  for (int64_t r = 0; r < 200; ++r) label.AppendInt(7000 + r);
  batch.push_back(std::move(label));
  ASSERT_TRUE((*appender)->Append(batch).ok());
  auto live = (*appender)->Finish();
  ASSERT_TRUE(live.ok());

  auto ds = ShardedTableReader::Open(*live, read_fn);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  IoStats scan_stats;
  auto stream = Scan(ds->get())
                    .Columns({"uid", "label"})
                    .Filter("label", CompareOp::kGe, 7000)
                    .Stats(&scan_stats)
                    .Stream();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  std::vector<RowBatch> batches = Drain(stream->get());
  // The two pre-evolution shards are all-null for "label": pruned
  // without touching a single byte of them.
  EXPECT_EQ(scan_stats.shards_pruned.load(), 2u);
  EXPECT_EQ(TotalRows(batches), 200u);
  for (const RowBatch& b : batches) {
    for (int64_t v : b.columns[1].int_values()) EXPECT_GE(v, 7000);
  }
}

// ------------------------------------------------- manifest statistics

TEST(ScanStream, ManifestStatsSurviveSerializeParse) {
  DatasetFixture fx(200, 50, 100);
  ASSERT_FALSE(fx.manifest.shard(0).column_stats.empty());
  Buffer blob = fx.manifest.Serialize();
  auto parsed = ShardManifest::Parse(blob.AsSlice());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, fx.manifest);
  // uid zone of shard 0 covers exactly its rows [0, 100).
  ZoneMap zone = parsed->shard(0).column_zone(0);
  ASSERT_TRUE(zone.valid);
  EXPECT_FALSE(zone.is_real);
  EXPECT_EQ(zone.min_i, 0);
  EXPECT_EQ(zone.max_i, 99);
  // Binary columns record packed-prefix bounds; list columns still
  // record no stats.
  ZoneMap tag_zone = parsed->shard(0).column_zone(2);
  ASSERT_TRUE(tag_zone.valid);
  EXPECT_TRUE(tag_zone.is_binary);
  EXPECT_LE(tag_zone.min_b, tag_zone.max_b);
  EXPECT_FALSE(parsed->shard(0).column_zone(3).valid);
}

TEST(ScanStream, ZoneMapMayMatchIsConservativeAndTight) {
  ZoneMap z = ZoneMap::OfInts(10, 20);
  EXPECT_TRUE(ZoneMapMayMatch(z, CompareOp::kEq, FilterValue(int64_t{15})));
  EXPECT_FALSE(ZoneMapMayMatch(z, CompareOp::kEq, FilterValue(int64_t{21})));
  EXPECT_FALSE(ZoneMapMayMatch(z, CompareOp::kGt, FilterValue(int64_t{20})));
  EXPECT_TRUE(ZoneMapMayMatch(z, CompareOp::kGe, FilterValue(int64_t{20})));
  EXPECT_FALSE(ZoneMapMayMatch(z, CompareOp::kLt, FilterValue(int64_t{10})));
  EXPECT_TRUE(ZoneMapMayMatch(z, CompareOp::kLe, FilterValue(int64_t{10})));
  EXPECT_TRUE(ZoneMapMayMatch(z, CompareOp::kNe, FilterValue(int64_t{15})));
  // A constant extent is the only one kNe can prune.
  ZoneMap c = ZoneMap::OfInts(7, 7);
  EXPECT_FALSE(ZoneMapMayMatch(c, CompareOp::kNe, FilterValue(int64_t{7})));
  EXPECT_TRUE(ZoneMapMayMatch(c, CompareOp::kEq, FilterValue(int64_t{7})));
  // Mixed int/real comparisons promote to double.
  EXPECT_TRUE(ZoneMapMayMatch(z, CompareOp::kGt, FilterValue(19.5)));
  EXPECT_FALSE(ZoneMapMayMatch(z, CompareOp::kGt, FilterValue(20.0)));
  // Unknown zones can never prune.
  EXPECT_TRUE(
      ZoneMapMayMatch(ZoneMap{}, CompareOp::kEq, FilterValue(int64_t{1})));
}

}  // namespace
}  // namespace bullion

// Failure-injection and robustness property tests: random corruption
// and truncation must produce clean Status errors (or detectably wrong
// data under verify_checksums), never crashes or hangs.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bullion.h"

namespace bullion {
namespace {

Schema SmallSchema() {
  return Schema({
      Field{"a", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, false},
      Field{"b", DataType::List(DataType::Primitive(PhysicalType::kInt64)),
            LogicalType::kPlain, false},
      Field{"c", DataType::Primitive(PhysicalType::kBinary),
            LogicalType::kPlain, false},
  });
}

std::vector<ColumnVector> SmallData(const Schema& schema, size_t rows) {
  Random rng(13);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(rng.UniformRange(-1000, 1000));
    std::vector<int64_t> list(rng.Uniform(5));
    for (auto& x : list) x = rng.UniformRange(0, 100);
    cols[1].AppendIntList(list);
    cols[2].AppendBinary("s" + std::to_string(rng.Uniform(50)));
  }
  return cols;
}

std::vector<uint8_t> WriteSmallFile() {
  InMemoryFileSystem fs;
  Schema schema = SmallSchema();
  auto f = fs.NewWritableFile("t");
  BULLION_CHECK_OK(
      WriteTableFile(f->get(), schema, {SmallData(schema, 300)}, {}));
  auto r = fs.NewReadableFile("t");
  Buffer all;
  BULLION_CHECK_OK((*r)->Read(0, static_cast<size_t>(*(*r)->Size()), &all));
  return std::vector<uint8_t>(all.data(), all.data() + all.size());
}

Status TryReadEverything(const std::vector<uint8_t>& bytes,
                         bool verify_checksums) {
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("t");
    BULLION_RETURN_NOT_OK((*f)->Append(Slice(bytes.data(), bytes.size())));
  }
  auto reader = TableReader::Open(*fs.NewReadableFile("t"));
  BULLION_RETURN_NOT_OK(reader.status());
  ReadOptions ropts;
  ropts.verify_checksums = verify_checksums;
  for (uint32_t g = 0; g < (*reader)->num_row_groups(); ++g) {
    for (uint32_t c = 0; c < (*reader)->num_columns(); ++c) {
      ColumnVector col;
      BULLION_RETURN_NOT_OK((*reader)->ReadColumnChunk(g, c, ropts, &col));
    }
  }
  return Status::OK();
}

TEST(Robustness, TruncationsNeverCrash) {
  std::vector<uint8_t> bytes = WriteSmallFile();
  // Truncate at a spread of prefixes including all short tails.
  for (size_t len = 0; len < bytes.size();
       len += std::max<size_t>(1, bytes.size() / 200)) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
    Status st = TryReadEverything(cut, false);
    EXPECT_FALSE(st.ok()) << "truncated file of " << len
                          << " bytes must not read fully";
  }
}

TEST(Robustness, SingleByteCorruptionDetectedByChecksums) {
  std::vector<uint8_t> bytes = WriteSmallFile();
  Random rng(17);
  size_t detected = 0, clean_error = 0, silent = 0;
  constexpr int kTrials = 150;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<uint8_t> evil = bytes;
    size_t pos = rng.Uniform(evil.size());
    uint8_t flip = static_cast<uint8_t>(1 + rng.Uniform(255));
    evil[pos] ^= flip;
    Status st = TryReadEverything(evil, /*verify_checksums=*/true);
    if (st.ok()) {
      // The flip landed in checksum/DV/metadata bytes that do not
      // affect decoded data, or the read path didn't touch it.
      ++silent;
    } else if (st.IsCorruption() || st.IsIOError() ||
               st.IsInvalidArgument() || st.IsNotFound() ||
               st.IsOutOfRange()) {
      ++clean_error;
      if (st.IsCorruption()) ++detected;
    }
  }
  // The key property: no crash across all trials, and data-page flips
  // are caught. (Flips in the footer's own checksum arrays make the
  // stored hash wrong -> also Corruption.)
  EXPECT_GT(detected, kTrials / 4);
  EXPECT_EQ(silent + clean_error, static_cast<size_t>(kTrials));
}

TEST(Robustness, PageChecksumCatchesDataFlip) {
  std::vector<uint8_t> bytes = WriteSmallFile();
  // Flip a byte early in the data region (first page).
  std::vector<uint8_t> evil = bytes;
  evil[10] ^= 0x40;
  Status st = TryReadEverything(evil, /*verify_checksums=*/true);
  EXPECT_FALSE(st.ok());
}

TEST(Robustness, GarbageFilesRejected) {
  Random rng(23);
  for (size_t size : {0u, 1u, 7u, 8u, 100u, 4096u}) {
    std::vector<uint8_t> junk(size);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    Status st = TryReadEverything(junk, false);
    EXPECT_FALSE(st.ok()) << size;
  }
}

TEST(Robustness, CorruptEncodedBlocksFailCleanly) {
  // Corrupt every byte position of a small encoded block, decode, and
  // require no crash (error or bounded output both fine).
  std::vector<int64_t> data = {1, 5, 5, 5, 9, -3, 1000000, 0};
  for (EncodingType t :
       {EncodingType::kZigZag, EncodingType::kRle, EncodingType::kDelta,
        EncodingType::kForDelta, EncodingType::kDictionary,
        EncodingType::kFastPFor, EncodingType::kChunked}) {
    CascadeOptions opts;
    CascadeContext ctx(opts, 0);
    BufferBuilder out;
    ASSERT_TRUE(EncodeIntBlockAs(t, data, &ctx, &out).ok());
    Buffer block = out.Finish();
    for (size_t pos = 0; pos < block.size(); ++pos) {
      std::vector<uint8_t> evil(block.data(), block.data() + block.size());
      evil[pos] ^= 0xFF;
      std::vector<int64_t> decoded;
      SliceReader reader(Slice(evil.data(), evil.size()));
      Status st = DecodeIntBlock(&reader, &decoded);
      // No assertion on st: silent mis-decodes are possible without
      // checksums; the property is absence of crashes/UB. But output
      // must stay bounded.
      EXPECT_LE(decoded.size(), 1u << 20)
          << EncodingTypeName(t) << " pos " << pos;
    }
  }
}

TEST(Robustness, DeleteThenCompactThenDeleteAgain) {
  // Lifecycle stress: interleave deletes and compactions.
  InMemoryFileSystem fs;
  Schema schema({
      Field{"v", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, true},
  });
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  for (int64_t r = 0; r < 5000; ++r) cols[0].AppendInt(r);
  {
    auto f = fs.NewWritableFile("t0");
    ASSERT_TRUE(WriteTableFile(f->get(), schema, {cols}, {}).ok());
  }
  std::string cur = "t0";
  size_t expected = 5000;
  Random rng(29);
  for (int round = 0; round < 3; ++round) {
    // Delete ~5% clustered.
    auto reader = *TableReader::Open(*fs.NewReadableFile(cur));
    uint64_t start = rng.Uniform(expected - 250);
    std::vector<uint64_t> doomed;
    for (uint64_t r = start; r < start + 250; ++r) doomed.push_back(r);
    {
      auto rf = *fs.NewReadableFile(cur);
      auto uf = *fs.OpenForUpdate(cur);
      DeleteExecutor exec(rf.get(), uf.get(), reader->footer());
      auto rep = exec.DeleteRows(doomed, ComplianceLevel::kLevel2);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      expected -= rep->rows_deleted;
    }
    // Compact into the next file.
    auto reader2 = *TableReader::Open(*fs.NewReadableFile(cur));
    std::string next = "t" + std::to_string(round + 1);
    auto dest = *fs.NewWritableFile(next);
    auto rep = CompactTable(reader2.get(), dest.get());
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    ASSERT_EQ(rep->rows_after, expected);
    cur = next;
    auto check = *TableReader::Open(*fs.NewReadableFile(cur));
    ASSERT_TRUE(check->VerifyChecksums().ok());
    ASSERT_EQ(check->num_rows(), expected);
  }
}

}  // namespace
}  // namespace bullion

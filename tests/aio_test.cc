// Async I/O engine tests (io/aio.h): tier parsing and degradation,
// batched submit/complete against every tier (including the real
// io_uring backend on fd-backed files where the kernel supports it),
// short-read and error propagation through the completion callbacks,
// the AggregatedWriteBuffer ordered-stream contract (byte identity,
// logical-vs-physical accounting, sticky errors), cancellation on
// scan abort, and the headline claim: sync-tier scans are
// byte-identical to the async tiers over both source kinds at
// 1/2/4/8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

// ------------------------------------------------------------- tier knobs

TEST(AioTier, ParseRecognizesEveryTierAndFallsBack) {
  EXPECT_EQ(ParseAioTier("sync", AioTier::kUring), AioTier::kSync);
  EXPECT_EQ(ParseAioTier("threads", AioTier::kUring), AioTier::kThreads);
  EXPECT_EQ(ParseAioTier("uring", AioTier::kSync), AioTier::kUring);
  EXPECT_EQ(ParseAioTier(nullptr, AioTier::kThreads), AioTier::kThreads);
  EXPECT_EQ(ParseAioTier("", AioTier::kSync), AioTier::kSync);
  EXPECT_EQ(ParseAioTier("URING", AioTier::kSync), AioTier::kSync);
  EXPECT_EQ(ParseAioTier("io_uring", AioTier::kThreads), AioTier::kThreads);
}

TEST(AioTier, NamesRoundTrip) {
  EXPECT_STREQ(AioTierName(AioTier::kSync), "sync");
  EXPECT_STREQ(AioTierName(AioTier::kThreads), "threads");
  EXPECT_STREQ(AioTierName(AioTier::kUring), "uring");
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    EXPECT_EQ(ParseAioTier(AioTierName(t), AioTier::kSync), t);
  }
}

TEST(AioTier, ExplicitConstructionHonorsOrDegradesTier) {
  AsyncIoService sync(AioTier::kSync);
  EXPECT_EQ(sync.tier(), AioTier::kSync);
  AsyncIoService threads(AioTier::kThreads);
  EXPECT_EQ(threads.tier(), AioTier::kThreads);
  // kUring either runs for real or degrades to kThreads — never fails.
  AsyncIoService uring(AioTier::kUring);
  EXPECT_TRUE(uring.tier() == AioTier::kUring ||
              uring.tier() == AioTier::kThreads);
  // The process default is whatever DefaultAioTier resolved to.
  EXPECT_EQ(AsyncIoService::Default().tier(), DefaultAioTier());
}

// ------------------------------------------------- batched read contract

/// One in-memory file of `n` distinct bytes (i * 131 + 7 mod 256).
std::shared_ptr<InMemoryFile> PatternFile(size_t n) {
  auto f = std::make_shared<InMemoryFile>();
  f->data.resize(n);
  for (size_t i = 0; i < n; ++i) {
    f->data[i] = static_cast<uint8_t>((i * 131 + 7) & 0xff);
  }
  return f;
}

/// Submits `reads` disjoint slices of `file` as ONE batch and checks
/// every completion fired exactly once with the right bytes.
void CheckBatch(AsyncIoService* service, const RandomAccessFile& file,
                const std::vector<std::pair<uint64_t, size_t>>& reads,
                const std::vector<uint8_t>& truth) {
  std::vector<Buffer> bufs(reads.size());
  std::vector<std::atomic<int>> fired(reads.size());
  for (auto& f : fired) f.store(0);
  std::vector<AioRead> batch;
  for (size_t i = 0; i < reads.size(); ++i) {
    AioRead r;
    r.file = &file;
    r.offset = reads[i].first;
    r.len = reads[i].second;
    r.out = &bufs[i];
    r.done = [&fired, i](Status s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      fired[i].fetch_add(1);
    };
    batch.push_back(std::move(r));
  }
  service->SubmitReadBatch(std::move(batch));
  service->Drain();
  EXPECT_EQ(service->InFlight(), 0);
  for (size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(fired[i].load(), 1) << "read " << i;
    ASSERT_EQ(bufs[i].size(), reads[i].second) << "read " << i;
    EXPECT_EQ(std::memcmp(bufs[i].data(), truth.data() + reads[i].first,
                          reads[i].second),
              0)
        << "read " << i;
  }
}

TEST(AsyncIoService, BatchSubmitCompletesEveryReadOnEveryTier) {
  auto mem = PatternFile(64 * 1024);
  InMemoryReadableFile file(mem, nullptr);
  // Out-of-order, overlapping-free slices spanning the file.
  std::vector<std::pair<uint64_t, size_t>> reads = {
      {40000, 5000}, {0, 100}, {8192, 8192}, {63000, 1536}, {512, 1}};
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    AsyncIoService service(t);
    CheckBatch(&service, file, reads, mem->data);
  }
}

TEST(AsyncIoService, SyncTierCompletesInlineInSubmissionOrder) {
  auto mem = PatternFile(4096);
  InMemoryReadableFile file(mem, nullptr);
  AsyncIoService service(AioTier::kSync);
  std::vector<size_t> order;
  std::vector<Buffer> bufs(3);
  std::vector<AioRead> batch;
  for (size_t i = 0; i < 3; ++i) {
    AioRead r;
    r.file = &file;
    r.offset = i * 1024;
    r.len = 512;
    r.out = &bufs[i];
    r.done = [&order, i](Status s) {
      ASSERT_TRUE(s.ok());
      order.push_back(i);
    };
    batch.push_back(std::move(r));
  }
  service.SubmitReadBatch(std::move(batch));
  // Inline passthrough: all done before SubmitReadBatch returned, in
  // submission order — the deterministic baseline tier.
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(service.InFlight(), 0);
}

TEST(AsyncIoService, UringTierReadsRealFileDescriptors) {
  // An fd-backed file exercises the io_uring ring (or the thread lane
  // on kernels without it — byte contract is identical either way).
  const std::string path = "aio_uring_roundtrip.tmp";
  std::vector<uint8_t> truth(256 * 1024);
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<uint8_t>((i * 31 + 3) & 0xff);
  }
  {
    auto w = OpenPosixWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append(Slice(truth.data(), truth.size())).ok());
    ASSERT_TRUE((*w)->Flush().ok());
  }
  auto r = OpenPosixReadableFile(path);
  ASSERT_TRUE(r.ok());
  ASSERT_GE((*r)->RawFd(), 0);
  std::vector<std::pair<uint64_t, size_t>> reads = {
      {100000, 40000}, {0, 4096}, {255000, 1144}, {4096, 1}};
  AsyncIoService service(AioTier::kUring);
  CheckBatch(&service, **r, reads, truth);
  // Many-read batch: larger than any reasonable SQ ring won't be, but
  // enough to need more than one completion wave.
  std::vector<std::pair<uint64_t, size_t>> many;
  for (size_t i = 0; i < 512; ++i) many.push_back({i * 512, 512});
  CheckBatch(&service, **r, many, truth);
  std::remove(path.c_str());
}

TEST(AsyncIoService, ShortReadPastEofIsOutOfRangeOnEveryTier) {
  const std::string path = "aio_uring_eof.tmp";
  {
    auto w = OpenPosixWritableFile(path, /*truncate=*/true);
    ASSERT_TRUE(w.ok());
    std::vector<uint8_t> bytes(1000, 0xab);
    ASSERT_TRUE((*w)->Append(Slice(bytes.data(), bytes.size())).ok());
    ASSERT_TRUE((*w)->Flush().ok());
  }
  auto posix = OpenPosixReadableFile(path);
  ASSERT_TRUE(posix.ok());
  auto mem = PatternFile(1000);
  InMemoryReadableFile memfile(mem, nullptr);
  const RandomAccessFile* files[] = {posix->get(), &memfile};
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    for (const RandomAccessFile* file : files) {
      AsyncIoService service(t);
      Buffer out;
      Status landed;
      std::atomic<bool> fired{false};
      std::vector<AioRead> batch(1);
      batch[0].file = file;
      batch[0].offset = 500;
      batch[0].len = 1000;  // 500 past EOF
      batch[0].out = &out;
      batch[0].done = [&](Status s) {
        landed = std::move(s);
        fired.store(true);
      };
      service.SubmitReadBatch(std::move(batch));
      service.Drain();
      ASSERT_TRUE(fired.load());
      EXPECT_TRUE(landed.IsOutOfRange())
          << AioTierName(t) << ": " << landed.ToString();
    }
  }
  std::remove(path.c_str());
}

/// Read stub that fails every read with an injected EIO.
class FailingFile : public RandomAccessFile {
 public:
  Status Read(uint64_t, size_t, Buffer*) const override {
    return Status::IOError("injected EIO");
  }
  Result<uint64_t> Size() const override { return uint64_t{1} << 20; }
};

TEST(AsyncIoService, IoErrorsPropagateThroughCompletion) {
  FailingFile file;
  for (AioTier t : {AioTier::kSync, AioTier::kThreads}) {
    AsyncIoService service(t);
    std::vector<Buffer> bufs(4);
    std::atomic<int> errors{0};
    std::vector<AioRead> batch;
    for (size_t i = 0; i < 4; ++i) {
      AioRead r;
      r.file = &file;
      r.offset = i * 100;
      r.len = 100;
      r.out = &bufs[i];
      r.done = [&errors](Status s) {
        EXPECT_TRUE(s.IsIOError()) << s.ToString();
        EXPECT_NE(s.ToString().find("injected EIO"), std::string::npos);
        errors.fetch_add(1);
      };
      batch.push_back(std::move(r));
    }
    service.SubmitReadBatch(std::move(batch));
    service.Drain();
    // Every read's callback fires even when all of them fail.
    EXPECT_EQ(errors.load(), 4) << AioTierName(t);
  }
}

// ------------------------------------------- aggregated write contract

/// Write stub that records every physical block it receives.
class RecordingFile : public WritableFile {
 public:
  Status Append(Slice data) override { return AppendBlock(data); }
  Status AppendBlock(Slice data) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fail_after_ >= 0 && blocks_.size() >= static_cast<size_t>(fail_after_)) {
      return Status::IOError("device gone");
    }
    blocks_.emplace_back(reinterpret_cast<const char*>(data.data()),
                         data.size());
    return Status::OK();
  }
  Status WriteAt(uint64_t, Slice) override {
    return Status::NotImplemented("WriteAt");
  }
  Status Flush() override {
    std::lock_guard<std::mutex> lock(mu_);
    ++flushes_;
    return Status::OK();
  }
  Result<uint64_t> Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const auto& b : blocks_) n += b.size();
    return n;
  }

  void FailAfterBlocks(int n) { fail_after_ = n; }
  std::vector<std::string> blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocks_;
  }
  std::string contents() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string all;
    for (const auto& b : blocks_) all += b;
    return all;
  }
  int flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> blocks_;
  int flushes_ = 0;
  int fail_after_ = -1;
};

TEST(AggregatedWriteBuffer, PreservesByteOrderAcrossTiersAndBlockSizes) {
  // Many appends of coprime sizes so block boundaries split appends at
  // awkward offsets; the physical stream must still concatenate to the
  // exact logical byte sequence, on every tier.
  std::string truth;
  std::vector<std::string> appends;
  for (size_t i = 0; i < 200; ++i) {
    std::string piece;
    size_t len = (i * 37 + 11) % 97 + 1;
    for (size_t j = 0; j < len; ++j) {
      piece.push_back(static_cast<char>('a' + (i + j) % 26));
    }
    truth += piece;
    appends.push_back(std::move(piece));
  }
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    for (size_t block : {size_t{64}, size_t{1024}, size_t{1} << 20}) {
      AsyncIoService service(t);
      RecordingFile file;
      {
        AggregatedWriteBuffer agg(&file, block, &service);
        for (const std::string& a : appends) {
          ASSERT_TRUE(agg.Append(Slice(a.data(), a.size())).ok());
        }
        auto size = agg.Size();
        ASSERT_TRUE(size.ok());
        EXPECT_EQ(*size, truth.size());
        ASSERT_TRUE(agg.Flush().ok());
      }
      EXPECT_EQ(file.contents(), truth)
          << AioTierName(t) << " block=" << block;
      EXPECT_GE(file.flushes(), 1);
      // Every full block is exactly the configured size (clamped up to
      // the 4096-byte O_DIRECT alignment floor); only the tail is
      // smaller. Far fewer physical writes than logical appends.
      const size_t full = std::max(block, size_t{4096});
      auto blocks = file.blocks();
      for (size_t b = 0; b + 1 < blocks.size(); ++b) {
        EXPECT_EQ(blocks[b].size(), full);
      }
      EXPECT_LT(blocks.size(), appends.size());
    }
  }
}

TEST(AggregatedWriteBuffer, SplitsLogicalFromPhysicalAccounting) {
  InMemoryFileSystem fs;
  auto file = fs.NewWritableFile("agg");
  ASSERT_TRUE(file.ok());
  AsyncIoService service(AioTier::kThreads);
  {
    AggregatedWriteBuffer agg(file->get(), 4096, &service);
    std::string piece(100, 'x');
    for (size_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(agg.Append(Slice(piece.data(), piece.size())).ok());
    }
    ASSERT_TRUE(agg.Flush().ok());
  }
  // 1000 logical appends; 100'000 bytes / 4096-byte blocks = 24 full
  // blocks + tail = 25 physical write calls.
  EXPECT_EQ(fs.stats().write_ops, 1000u);
  EXPECT_EQ(fs.stats().write_calls, 25u);
  EXPECT_EQ(fs.stats().bytes_written, 100000u);
  EXPECT_EQ(*fs.FileSize("agg"), 100000u);
}

TEST(AggregatedWriteBuffer, WriteErrorIsStickyAndSurfacesEverywhere) {
  for (AioTier t : {AioTier::kSync, AioTier::kThreads}) {
    AsyncIoService service(t);
    RecordingFile file;
    file.FailAfterBlocks(1);  // first block lands, second gets EIO
    AggregatedWriteBuffer agg(&file, 64, &service);
    std::string piece(64, 'y');
    Status st;
    // Async tiers may accept a few appends before the failure lands;
    // the error must surface through Append or, at latest, Flush.
    for (size_t i = 0; i < 100 && st.ok(); ++i) {
      st = agg.Append(Slice(piece.data(), piece.size()));
    }
    if (st.ok()) st = agg.Flush();
    EXPECT_TRUE(st.IsIOError()) << AioTierName(t) << ": " << st.ToString();
    // Sticky: every later operation reports the same failure.
    EXPECT_TRUE(agg.Append(Slice(piece.data(), piece.size())).IsIOError());
    EXPECT_TRUE(agg.Flush().IsIOError());
    EXPECT_TRUE(agg.Barrier().IsIOError());
  }
}

// --------------------------------------------------- scan-seam identity

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kPlain, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeOrderedData(const Schema& schema, size_t rows,
                                          size_t first_uid) {
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  for (size_t r = 0; r < rows; ++r) {
    int64_t uid = static_cast<int64_t>(first_uid + r);
    cols[0].AppendInt(uid);
    cols[1].AppendReal(static_cast<double>(uid) / 1000.0);
    cols[2].AppendBinary("tag" + std::to_string(uid % 5));
    cols[3].AppendIntList({uid, uid + 1});
  }
  return cols;
}

struct FileFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::unique_ptr<TableReader> reader;

  FileFixture(size_t total_rows, uint32_t rows_per_group) {
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t r = 0; r < total_rows; r += rows_per_group) {
      groups.push_back(MakeOrderedData(
          schema, std::min<size_t>(rows_per_group, total_rows - r), r));
    }
    WriterOptions opts;
    opts.rows_per_page = 16;
    auto f = fs.NewWritableFile("t");
    EXPECT_TRUE(WriteTableFile(f->get(), schema, groups, opts).ok());
    reader = *TableReader::Open(*fs.NewReadableFile("t"));
  }
};

struct DatasetFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  ShardManifest manifest;
  std::unique_ptr<ShardedTableReader> reader;

  DatasetFixture(size_t total_rows, uint32_t rows_per_group,
                 uint64_t rows_per_shard) {
    ShardedWriterOptions opts;
    opts.rows_per_group = rows_per_group;
    opts.target_rows_per_shard = rows_per_shard;
    opts.base_name = "t";
    opts.writer.rows_per_page = 16;
    ShardedTableWriter writer(schema, opts, [&](const std::string& name) {
      return fs.NewWritableFile(name);
    });
    EXPECT_TRUE(writer.Append(MakeOrderedData(schema, total_rows, 0)).ok());
    manifest = *writer.Finish();
    reader = *ShardedTableReader::Open(manifest, [&](const std::string& n) {
      return fs.NewReadableFile(n);
    });
  }
};

std::vector<RowBatch> Drain(BatchStream* stream) {
  std::vector<RowBatch> batches;
  RowBatch batch;
  for (;;) {
    auto more = stream->Next(&batch);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    batches.push_back(std::move(batch));
  }
  return batches;
}

TEST(AioScan, SyncTierIsByteIdenticalToAsyncTiersOnFileScans) {
  FileFixture fx(600, 50);
  AsyncIoService sync(AioTier::kSync);
  auto truth_stream = Scan(fx.reader.get()).Threads(1).Aio(&sync).Stream();
  ASSERT_TRUE(truth_stream.ok());
  std::vector<RowBatch> truth = Drain(truth_stream->get());
  ASSERT_FALSE(truth.empty());
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    AsyncIoService service(t);
    for (size_t threads : {1, 2, 4, 8}) {
      auto stream =
          Scan(fx.reader.get()).Threads(threads).Aio(&service).Stream();
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      std::vector<RowBatch> got = Drain(stream->get());
      ASSERT_EQ(got.size(), truth.size())
          << AioTierName(t) << " threads=" << threads;
      for (size_t g = 0; g < got.size(); ++g) {
        EXPECT_EQ(got[g].group, truth[g].group);
        EXPECT_EQ(got[g].columns, truth[g].columns)
            << AioTierName(t) << " threads=" << threads << " group " << g;
      }
    }
  }
}

TEST(AioScan, SyncTierIsByteIdenticalToAsyncTiersOnDatasetScans) {
  DatasetFixture fx(600, 50, 200);
  ASSERT_GT(fx.manifest.num_shards(), 1u);
  AsyncIoService sync(AioTier::kSync);
  auto truth_stream = Scan(fx.reader.get()).Threads(1).Aio(&sync).Stream();
  ASSERT_TRUE(truth_stream.ok());
  std::vector<RowBatch> truth = Drain(truth_stream->get());
  ASSERT_FALSE(truth.empty());
  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    AsyncIoService service(t);
    for (size_t threads : {1, 2, 4, 8}) {
      auto stream =
          Scan(fx.reader.get()).Threads(threads).Aio(&service).Stream();
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      std::vector<RowBatch> got = Drain(stream->get());
      ASSERT_EQ(got.size(), truth.size())
          << AioTierName(t) << " threads=" << threads;
      for (size_t g = 0; g < got.size(); ++g) {
        EXPECT_EQ(got[g].columns, truth[g].columns)
            << AioTierName(t) << " threads=" << threads << " group " << g;
      }
    }
  }
}

TEST(AioScan, FilteredScanMatchesAcrossTiers) {
  DatasetFixture fx(600, 50, 200);
  AsyncIoService sync(AioTier::kSync);
  auto truth_stream = Scan(fx.reader.get())
                          .Columns({"uid", "score"})
                          .Filter("uid", CompareOp::kGe, int64_t{450})
                          .Threads(1)
                          .Aio(&sync)
                          .Stream();
  ASSERT_TRUE(truth_stream.ok());
  std::vector<RowBatch> truth = Drain(truth_stream->get());
  for (AioTier t : {AioTier::kThreads, AioTier::kUring}) {
    AsyncIoService service(t);
    auto stream = Scan(fx.reader.get())
                      .Columns({"uid", "score"})
                      .Filter("uid", CompareOp::kGe, int64_t{450})
                      .Threads(4)
                      .Aio(&service)
                      .Stream();
    ASSERT_TRUE(stream.ok());
    std::vector<RowBatch> got = Drain(stream->get());
    ASSERT_EQ(got.size(), truth.size()) << AioTierName(t);
    for (size_t g = 0; g < got.size(); ++g) {
      EXPECT_EQ(got[g].columns, truth[g].columns) << AioTierName(t);
    }
  }
}

// ------------------------------------------------- cancellation on abort

/// Read wrapper that delays every pread, so a dropped stream still has
/// reads in flight — the abort path must drain them before teardown.
class SlowFile : public RandomAccessFile {
 public:
  explicit SlowFile(std::unique_ptr<RandomAccessFile> base)
      : base_(std::move(base)) {}
  Status Read(uint64_t offset, size_t len, Buffer* out) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return base_->Read(offset, len, out);
  }
  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
};

TEST(AioScan, AbortingAStreamWithReadsInFlightIsSafe) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t r = 0; r < 800; r += 50) {
    groups.push_back(MakeOrderedData(schema, 50, r));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 16;
  auto f = fs.NewWritableFile("t");
  ASSERT_TRUE(WriteTableFile(f->get(), schema, groups, wopts).ok());
  for (AioTier t : {AioTier::kThreads, AioTier::kUring}) {
    AsyncIoService service(t);
    auto slow = std::make_unique<SlowFile>(*fs.NewReadableFile("t"));
    auto reader = TableReader::Open(std::move(slow));
    ASSERT_TRUE(reader.ok());
    auto stream = Scan(reader->get())
                      .Threads(4)
                      .PrefetchDepth(4)
                      .Aio(&service)
                      .Stream();
    ASSERT_TRUE(stream.ok());
    RowBatch batch;
    auto more = (*stream)->Next(&batch);  // at least one unit in flight
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    stream->reset();  // abort: pending preads + decodes must drain
    service.Drain();
    EXPECT_EQ(service.InFlight(), 0) << AioTierName(t);
  }
}

/// Fails every read after the first `ok_reads` — the stream must
/// surface the error from Next(), not hang or crash.
class FailAfterFile : public RandomAccessFile {
 public:
  FailAfterFile(std::unique_ptr<RandomAccessFile> base, int ok_reads)
      : base_(std::move(base)), remaining_(ok_reads) {}
  Status Read(uint64_t offset, size_t len, Buffer* out) const override {
    if (remaining_.fetch_sub(1) <= 0) {
      return Status::IOError("injected EIO");
    }
    return base_->Read(offset, len, out);
  }
  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  mutable std::atomic<int> remaining_;
};

TEST(AioScan, ReadErrorsSurfaceFromNext) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t r = 0; r < 400; r += 50) {
    groups.push_back(MakeOrderedData(schema, 50, r));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 16;
  auto f = fs.NewWritableFile("t");
  ASSERT_TRUE(WriteTableFile(f->get(), schema, groups, wopts).ok());
  for (AioTier t : {AioTier::kSync, AioTier::kThreads}) {
    AsyncIoService service(t);
    // Footer/metadata reads succeed; the first data pread fails.
    auto failing =
        std::make_unique<FailAfterFile>(*fs.NewReadableFile("t"), 4);
    auto reader = TableReader::Open(std::move(failing));
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    auto stream =
        Scan(reader->get()).Threads(2).Aio(&service).Stream();
    ASSERT_TRUE(stream.ok());
    RowBatch batch;
    Status err = Status::OK();
    for (;;) {
      auto more = (*stream)->Next(&batch);
      if (!more.ok()) {
        err = more.status();
        break;
      }
      if (!*more) break;
    }
    EXPECT_TRUE(err.IsIOError()) << AioTierName(t) << ": " << err.ToString();
    EXPECT_NE(err.ToString().find("injected EIO"), std::string::npos);
  }
}

// --------------------------------------------------- write-seam identity

TEST(AioWrite, AggregatedCommitStreamIsByteIdenticalToDirectWrites) {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t r = 0; r < 500; r += 100) {
    groups.push_back(MakeOrderedData(schema, 100, r));
  }
  // Reference: unaggregated direct appends.
  WriterOptions ref_opts;
  ref_opts.rows_per_page = 16;
  ref_opts.write_block_bytes = 0;
  auto ref_file = fs.NewWritableFile("ref");
  ASSERT_TRUE(WriteTableFile(ref_file->get(), schema, groups, ref_opts).ok());
  auto ref_reader = fs.NewReadableFile("ref");
  uint64_t ref_size = *(*ref_reader)->Size();
  Buffer ref_bytes;
  ASSERT_TRUE((*ref_reader)->Read(0, ref_size, &ref_bytes).ok());

  for (AioTier t : {AioTier::kSync, AioTier::kThreads, AioTier::kUring}) {
    for (size_t block : {size_t{512}, size_t{1} << 20}) {
      AsyncIoService service(t);
      WriterOptions opts;
      opts.rows_per_page = 16;
      opts.write_block_bytes = block;
      opts.aio = &service;
      std::string name =
          std::string("agg_") + AioTierName(t) + "_" + std::to_string(block);
      auto file = fs.NewWritableFile(name);
      ASSERT_TRUE(WriteTableFile(file->get(), schema, groups, opts).ok());
      ASSERT_EQ(*fs.FileSize(name), ref_size);
      auto reader = fs.NewReadableFile(name);
      Buffer bytes;
      ASSERT_TRUE((*reader)->Read(0, ref_size, &bytes).ok());
      EXPECT_EQ(std::memcmp(bytes.data(), ref_bytes.data(), ref_size), 0)
          << AioTierName(t) << " block=" << block;
    }
  }
}

TEST(AioWrite, PosixRoundTripThroughAggregationAndUringScan) {
  // Full posix round trip: TableWriter through the aggregated write
  // stream onto a real fd (O_DIRECT if BULLION_ODIRECT=1 and the
  // filesystem allows it), read back through the uring scan seam, and
  // compare against the in-memory reference.
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t r = 0; r < 300; r += 50) {
    groups.push_back(MakeOrderedData(schema, 50, r));
  }
  WriterOptions opts;
  opts.rows_per_page = 16;
  auto mem_file = fs.NewWritableFile("ref");
  ASSERT_TRUE(WriteTableFile(mem_file->get(), schema, groups, opts).ok());
  auto mem_reader = *TableReader::Open(*fs.NewReadableFile("ref"));
  AsyncIoService sync(AioTier::kSync);
  auto truth_stream = Scan(mem_reader.get()).Threads(1).Aio(&sync).Stream();
  std::vector<RowBatch> truth = Drain(truth_stream->get());

  const std::string path = "aio_posix_roundtrip.tmp";
  AsyncIoService service(AioTier::kUring);
  WriterOptions popts;
  popts.rows_per_page = 16;
  popts.aio = &service;
  auto posix_w = OpenPosixWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(posix_w.ok());
  ASSERT_TRUE(WriteTableFile(posix_w->get(), schema, groups, popts).ok());

  auto posix_r = OpenPosixReadableFile(path);
  ASSERT_TRUE(posix_r.ok());
  EXPECT_EQ(*(*posix_r)->Size(), *fs.FileSize("ref"));
  auto reader = TableReader::Open(std::move(*posix_r));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (size_t threads : {1, 4}) {
    auto stream =
        Scan(reader->get()).Threads(threads).Aio(&service).Stream();
    ASSERT_TRUE(stream.ok());
    std::vector<RowBatch> got = Drain(stream->get());
    ASSERT_EQ(got.size(), truth.size());
    for (size_t g = 0; g < got.size(); ++g) {
      EXPECT_EQ(got[g].columns, truth[g].columns) << "group " << g;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bullion

// User-centric event storage tests (§2.2 Challenge: Generative
// Recommendation, one training example per user) and compaction.

#include <gtest/gtest.h>

#include "common/random.h"
#include "format/compaction.h"
#include "format/deletion.h"
#include "format/user_events.h"
#include "io/file.h"

namespace bullion {
namespace {

std::vector<UserHistory> MakeHistories(size_t users, uint64_t seed) {
  Random rng(seed);
  std::vector<UserHistory> out(users);
  for (size_t u = 0; u < users; ++u) {
    out[u].uid = static_cast<int64_t>(u * 3 + 1);  // sparse uids
    size_t n_events = 1 + rng.Uniform(50);
    int64_t ts = 1700000000;
    for (size_t e = 0; e < n_events; ++e) {
      ts += static_cast<int64_t>(1 + rng.Uniform(1000));
      UserEvent ev;
      ev.timestamp = ts;
      ev.kind = static_cast<UserEvent::Kind>(rng.Uniform(4));
      ev.item_id = static_cast<int64_t>(rng.Uniform(100000));
      ev.value = rng.NextDouble();
      out[u].events.push_back(ev);
    }
  }
  return out;
}

TEST(UserEvents, WriteAndPointLookup) {
  InMemoryFileSystem fs;
  std::vector<UserHistory> histories = MakeHistories(5000, 3);
  {
    auto f = fs.NewWritableFile("u");
    UserEventStoreOptions opts;
    opts.users_per_group = 1000;
    ASSERT_TRUE(UserEventStore::Write(f->get(), histories, opts).ok());
  }
  auto store = UserEventStore::Open(*fs.NewReadableFile("u"));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_users(), 5000u);

  for (size_t u : {size_t{0}, size_t{999}, size_t{1000}, size_t{4999}}) {
    auto h = (*store)->GetUserHistory(histories[u].uid);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    EXPECT_EQ(h->uid, histories[u].uid);
    EXPECT_EQ(h->events, histories[u].events);
  }
}

TEST(UserEvents, MissingUserNotFound) {
  InMemoryFileSystem fs;
  std::vector<UserHistory> histories = MakeHistories(100, 4);
  {
    auto f = fs.NewWritableFile("u");
    ASSERT_TRUE(UserEventStore::Write(f->get(), histories, {}).ok());
  }
  auto store = *UserEventStore::Open(*fs.NewReadableFile("u"));
  // uid 2 is between uid 1 and uid 4, absent.
  EXPECT_TRUE(store->GetUserHistory(2).status().IsNotFound());
  EXPECT_TRUE(store->GetUserHistory(-5).status().IsNotFound());
  EXPECT_TRUE(store->GetUserHistory(1 << 20).status().IsNotFound());
}

TEST(UserEvents, RejectsUnsortedInput) {
  InMemoryFileSystem fs;
  std::vector<UserHistory> histories = MakeHistories(10, 5);
  std::swap(histories[2], histories[3]);
  auto f = fs.NewWritableFile("u");
  EXPECT_FALSE(UserEventStore::Write(f->get(), histories, {}).ok());
}

TEST(UserEvents, ScanAllVisitsEveryUserInOrder) {
  InMemoryFileSystem fs;
  std::vector<UserHistory> histories = MakeHistories(2500, 6);
  {
    auto f = fs.NewWritableFile("u");
    UserEventStoreOptions opts;
    opts.users_per_group = 512;
    ASSERT_TRUE(UserEventStore::Write(f->get(), histories, opts).ok());
  }
  auto store = *UserEventStore::Open(*fs.NewReadableFile("u"));
  size_t idx = 0;
  Status st = store->ScanAll([&](const UserHistory& h) {
    ASSERT_LT(idx, histories.size());
    EXPECT_EQ(h.uid, histories[idx].uid);
    EXPECT_EQ(h.events, histories[idx].events);
    ++idx;
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(idx, histories.size());
}

TEST(UserEvents, PointLookupReadsOneGroupNeighborhood) {
  InMemoryFileSystem fs;
  std::vector<UserHistory> histories = MakeHistories(8000, 7);
  {
    auto f = fs.NewWritableFile("u");
    UserEventStoreOptions opts;
    opts.users_per_group = 1000;
    ASSERT_TRUE(UserEventStore::Write(f->get(), histories, opts).ok());
  }
  uint64_t total = *fs.FileSize("u");
  auto store = *UserEventStore::Open(*fs.NewReadableFile("u"));
  fs.ResetStats();
  ASSERT_TRUE(store->GetUserHistory(histories[4500].uid).ok());
  // Binary search reads a handful of uid chunks plus one group's event
  // chunks — far less than the whole file.
  EXPECT_LT(fs.stats().bytes_read, total / 4);
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

TEST(Compaction, ReclaimsDeletedRows) {
  InMemoryFileSystem fs;
  Schema schema({
      Field{"v", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, true},
  });
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  for (int64_t r = 0; r < 10000; ++r) cols[0].AppendInt(r);
  {
    auto f = fs.NewWritableFile("t");
    TableWriter writer(schema, f->get(), {});
    ASSERT_TRUE(writer.WriteRowGroup(cols).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  // Delete 30% of rows.
  std::vector<uint64_t> doomed;
  for (uint64_t r = 1000; r < 4000; ++r) doomed.push_back(r);
  {
    auto reader = *TableReader::Open(*fs.NewReadableFile("t"));
    auto rf = *fs.NewReadableFile("t");
    auto uf = *fs.OpenForUpdate("t");
    DeleteExecutor exec(rf.get(), uf.get(), reader->footer());
    ASSERT_TRUE(exec.DeleteRows(doomed, ComplianceLevel::kLevel2).ok());
  }
  auto reader = *TableReader::Open(*fs.NewReadableFile("t"));
  EXPECT_NEAR(DeletedFraction(*reader), 0.3, 1e-9);

  auto dest = *fs.NewWritableFile("t.compacted");
  auto report = CompactTable(reader.get(), dest.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_before, 10000u);
  EXPECT_EQ(report->rows_after, 7000u);

  auto compacted = *TableReader::Open(*fs.NewReadableFile("t.compacted"));
  EXPECT_EQ(compacted->num_rows(), 7000u);
  EXPECT_NEAR(DeletedFraction(*compacted), 0.0, 1e-9);
  ReadOptions ropts;
  ColumnVector v;
  ASSERT_TRUE(compacted->ReadColumnChunk(0, 0, ropts, &v).ok());
  EXPECT_EQ(v.int_values()[999], 999);
  EXPECT_EQ(v.int_values()[1000], 4000);  // gap closed
  EXPECT_TRUE(compacted->VerifyChecksums().ok());
}

TEST(Compaction, NoopOnCleanTable) {
  InMemoryFileSystem fs;
  Schema schema({
      Field{"v", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, false},
  });
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  for (int64_t r = 0; r < 500; ++r) cols[0].AppendInt(r * 2);
  {
    auto f = fs.NewWritableFile("t");
    TableWriter writer(schema, f->get(), {});
    ASSERT_TRUE(writer.WriteRowGroup(cols).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = *TableReader::Open(*fs.NewReadableFile("t"));
  EXPECT_EQ(DeletedFraction(*reader), 0.0);
  auto dest = *fs.NewWritableFile("t2");
  auto report = CompactTable(reader.get(), dest.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_after, 500u);
  auto r2 = *TableReader::Open(*fs.NewReadableFile("t2"));
  ReadOptions ropts;
  ColumnVector v;
  ASSERT_TRUE(r2->ReadColumnChunk(0, 0, ropts, &v).ok());
  EXPECT_EQ(v, cols[0]);
}

}  // namespace
}  // namespace bullion

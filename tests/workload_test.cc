// Workload generator tests: Table 1 fidelity, zipf skew, sliding
// windows, core facade.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/bullion.h"
#include "workload/ads_schema.h"
#include "workload/sliding_window.h"
#include "workload/zipf.h"

namespace bullion {
namespace workload {
namespace {

TEST(Table1, BreakdownMatchesPaper) {
  const auto& t1 = Table1Breakdown();
  ASSERT_EQ(t1.size(), 14u);
  EXPECT_EQ(t1[0].type_name, "list<int64>");
  EXPECT_EQ(t1[0].column_count, 16256u);
  EXPECT_EQ(t1[1].column_count, 812u);
  EXPECT_EQ(t1.back().type_name, "int64");
  EXPECT_EQ(Table1TotalColumns(), 16256u + 812 + 277 + 143 + 120 + 46 + 29 +
                                      18 + 10 + 8 + 5 + 5 + 3 + 1);
}

TEST(AdsSchema, FullScaleLeafCount) {
  // At scale 1.0 the leaf count exceeds the field count because structs
  // flatten to one leaf per member.
  Schema schema = BuildAdsSchema(0.01);
  EXPECT_GT(schema.num_leaves(), 160u);  // 1% of ~17.7k fields
  // Every type present at least once.
  Schema tiny = BuildAdsSchema(0.0);
  EXPECT_GE(tiny.num_fields(), Table1Breakdown().size());
}

TEST(AdsSchema, GeneratedDataShape) {
  Schema schema = BuildAdsSchema(0.002);
  AdsDataOptions opts;
  opts.seq_length = 16;
  std::vector<ColumnVector> data = GenerateAdsData(schema, 50, 1, opts);
  ASSERT_EQ(data.size(), schema.num_leaves());
  for (size_t c = 0; c < data.size(); ++c) {
    EXPECT_EQ(data[c].num_rows(), 50u) << schema.leaves()[c].name;
  }
  // Sequence features have fixed window length.
  for (size_t c = 0; c < data.size(); ++c) {
    if (schema.leaves()[c].logical == LogicalType::kIdSequence) {
      auto [b, e] = data[c].ListRange(0);
      EXPECT_EQ(e - b, 16);
      break;
    }
  }
}

TEST(AdsSchema, WritesAndReadsThroughBullion) {
  Schema schema = BuildAdsSchema(0.001);
  std::vector<ColumnVector> data = GenerateAdsData(schema, 64, 2);
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("ads");
  ASSERT_TRUE(WriteTableFile(f->get(), schema, {data}).ok());
  auto reader = *TableReader::Open(*fs.NewReadableFile("ads"));
  EXPECT_EQ(reader->num_columns(), schema.num_leaves());
  auto col = ReadFullColumn(reader.get(), schema.leaves()[0].name);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, data[0]);
}

TEST(Zipf, SkewConcentratesMass) {
  ZipfGenerator zipf(100000, 1.2, 7);
  std::map<uint64_t, size_t> freq;
  for (int i = 0; i < 50000; ++i) ++freq[zipf.Next()];
  // Top-10 ids should hold a large share under s=1.2.
  std::vector<size_t> counts;
  for (auto& [id, f] : freq) counts.push_back(f);
  std::sort(counts.rbegin(), counts.rend());
  size_t top10 = 0;
  for (size_t i = 0; i < 10 && i < counts.size(); ++i) top10 += counts[i];
  EXPECT_GT(top10, 50000u / 4);
  // All samples within range.
  for (auto& [id, f] : freq) EXPECT_LT(id, 100000u);
}

TEST(Zipf, Deterministic) {
  ZipfGenerator a(1000, 1.1, 9);
  ZipfGenerator b(1000, 1.1, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Zipf, DifferentSeedsDivergeDifferentSkewsConcentrate) {
  ZipfGenerator a(1000, 1.1, 9);
  ZipfGenerator c(1000, 1.1, 10);
  size_t same = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Next() == c.Next()) ++same;
  }
  // Streams from distinct seeds agree only by coincidence (skew makes
  // low ids collide often, so allow a generous margin).
  EXPECT_LT(same, 150u);

  // Higher s concentrates more mass on the most popular id.
  auto top_share = [](double s) {
    ZipfGenerator z(10000, s, 21);
    std::map<uint64_t, size_t> freq;
    for (int i = 0; i < 20000; ++i) ++freq[z.Next()];
    size_t top = 0;
    for (auto& [id, f] : freq) top = std::max(top, f);
    return top;
  };
  EXPECT_GT(top_share(1.4), top_share(0.8));
}

TEST(Zipf, SmallDomainStaysInRangeAndCoversIt) {
  // A serving-tier key stream over a tiny table: every sample must be
  // a valid row id, and skew must not starve the domain entirely.
  ZipfGenerator z(10, 1.2, 33);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    uint64_t k = z.Next();
    ASSERT_LT(k, 10u);
    seen.insert(k);
  }
  EXPECT_GE(seen.size(), 8u);
}

TEST(Zipf, NearOneExponentIsHandled) {
  // s == 1.0 takes the logarithmic normalization branch; make sure it
  // samples sanely rather than degenerating.
  ZipfGenerator z(100000, 1.0, 5);
  std::map<uint64_t, size_t> freq;
  for (int i = 0; i < 10000; ++i) ++freq[z.Next()];
  for (auto& [id, f] : freq) EXPECT_LT(id, 100000u);
  // id 0 is the mode under any positive skew.
  size_t max_f = 0;
  uint64_t max_id = 0;
  for (auto& [id, f] : freq) {
    if (f > max_f) {
      max_f = f;
      max_id = id;
    }
  }
  EXPECT_EQ(max_id, 0u);
}

TEST(SlidingWindow, OverlapControlledByShiftProb) {
  SlidingWindowOptions low_shift;
  low_shift.shift_prob = 0.05;
  low_shift.users = 5;
  low_shift.events_per_user = 50;
  low_shift.window = 64;
  SlidingWindowOptions high_shift = low_shift;
  high_shift.shift_prob = 1.0;

  std::vector<int64_t> off_a, val_a, off_b, val_b;
  MakeSlidingWindowColumn(low_shift, &off_a, &val_a);
  MakeSlidingWindowColumn(high_shift, &off_b, &val_b);
  ASSERT_EQ(off_a.size(), off_b.size());

  auto sparse_a = EncodeSparseDeltaColumn(off_a, val_a);
  auto sparse_b = EncodeSparseDeltaColumn(off_b, val_b);
  ASSERT_TRUE(sparse_a.ok());
  ASSERT_TRUE(sparse_b.ok());
  // Lower shift probability -> more overlap -> smaller encoding.
  EXPECT_LT(sparse_a->size(), sparse_b->size());
}

TEST(Figure1, SeriesShape) {
  const auto& fig1 = Figure1TableSizesPb();
  ASSERT_EQ(fig1.size(), 10u);
  EXPECT_DOUBLE_EQ(fig1[0].second, 100.0);
  for (size_t i = 1; i < fig1.size(); ++i) {
    EXPECT_LT(fig1[i].second, fig1[i - 1].second);
  }
  EXPECT_GT(EstimateBytesPerRow({}), 10000.0);
}

}  // namespace
}  // namespace workload
}  // namespace bullion

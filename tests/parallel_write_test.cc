// Parallel write path tests: stage → encode → commit layering,
// WriterOptions validation, and the headline determinism claim — a
// parallel write (single-file and sharded) is byte-identical to the
// serial writer at every thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kQualityScore, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  fields.push_back({"emb",
                    DataType::List(DataType::Primitive(PhysicalType::kFloat32)),
                    LogicalType::kEmbedding, false});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeMixedData(const Schema& schema, size_t rows,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window;
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(r / 3));
    cols[1].AppendReal(rng.NextDouble());
    cols[2].AppendBinary("tag" + std::to_string(r % 7));
    if (window.empty() || rng.Bernoulli(0.25)) {
      window.insert(window.begin(), rng.UniformRange(0, 99));
      if (window.size() > 12) window.pop_back();
    }
    cols[3].AppendIntList(window);
    std::vector<double> emb(6);
    for (double& x : emb) x = std::tanh(rng.NextGaussian());
    cols[4].AppendRealList(emb);
  }
  return cols;
}

std::vector<uint8_t> FileBytes(const InMemoryFileSystem& fs,
                               const std::string& name) {
  auto file = fs.NewReadableFile(name);
  EXPECT_TRUE(file.ok());
  auto size = (*file)->Size();
  EXPECT_TRUE(size.ok());
  Buffer buf;
  EXPECT_TRUE((*file)->Read(0, *size, &buf).ok());
  return std::vector<uint8_t>(buf.data(), buf.data() + buf.size());
}

// ----------------------------------------------------------- validation

TEST(WriterValidation, RejectsZeroRowsPerPage) {
  Schema schema = MakeMixedSchema();
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("t");
  WriterOptions wopts;
  wopts.rows_per_page = 0;
  TableWriter writer(schema, f->get(), wopts);
  Status st = writer.WriteRowGroup(MakeMixedData(schema, 10, 1));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(writer.Finish().ok());
  EXPECT_FALSE(WriteBuilder(schema, f->get()).RowsPerPage(0).Build().ok());
}

TEST(WriterValidation, RejectsMalformedColumnOrder) {
  Schema schema = MakeMixedSchema();
  ASSERT_EQ(schema.num_leaves(), 5u);
  auto validate = [&](std::vector<uint32_t> order) {
    WriterOptions wopts;
    wopts.column_order = std::move(order);
    return ValidateWriterOptions(wopts, schema);
  };
  EXPECT_TRUE(validate({}).ok());
  EXPECT_TRUE(validate({4, 3, 1, 0, 2}).ok());
  EXPECT_FALSE(validate({0, 1, 2}).ok());                 // size mismatch
  EXPECT_FALSE(validate({0, 1, 2, 3, 99}).ok());          // out of range
  EXPECT_FALSE(validate({0, 1, 2, 3, 3}).ok());           // duplicate
  // Writers surface the same error instead of misbehaving downstream.
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("t");
  WriterOptions bad;
  bad.column_order = {0, 1, 2, 3, 99};
  TableWriter writer(schema, f->get(), bad);
  EXPECT_FALSE(writer.WriteRowGroup(MakeMixedData(schema, 10, 1)).ok());
}

TEST(WriterValidation, RejectsQualitySortColumnOutOfRange) {
  Schema schema = MakeMixedSchema();
  WriterOptions wopts;
  wopts.quality_sort_column = 42;
  EXPECT_FALSE(ValidateWriterOptions(wopts, schema).ok());
  wopts.quality_sort_column = -1;
  EXPECT_TRUE(ValidateWriterOptions(wopts, schema).ok());
}

TEST(WriterValidation, ShardedRejectsZeroTargets) {
  Schema schema = MakeMixedSchema();
  InMemoryFileSystem fs;
  auto opener = [&](const std::string& name) {
    return fs.NewWritableFile(name);
  };
  ShardedWriterOptions zero_shard;
  zero_shard.target_rows_per_shard = 0;
  ShardedTableWriter w1(schema, zero_shard, opener);
  EXPECT_FALSE(w1.Append(MakeMixedData(schema, 10, 1)).ok());
  EXPECT_FALSE(w1.Finish().ok());

  ShardedWriterOptions zero_group;
  zero_group.rows_per_group = 0;
  ShardedTableWriter w2(schema, zero_group, opener);
  EXPECT_FALSE(w2.Append(MakeMixedData(schema, 10, 1)).ok());

  EXPECT_FALSE(
      ShardedWriteBuilder(schema, opener).RowsPerShard(0).Build().ok());
  EXPECT_FALSE(
      ShardedWriteBuilder(schema, opener).RowsPerGroup(0).Build().ok());
  EXPECT_TRUE(ShardedWriteBuilder(schema, opener).Build().ok());
}

// ---------------------------------------------------------------- stage

TEST(StageRowGroup, SlicesPlacementMajorPageTasks) {
  Schema schema = MakeMixedSchema();
  WriterOptions wopts;
  wopts.rows_per_page = 4;
  wopts.column_order = {2, 0, 1, 4, 3};
  auto batch = std::make_shared<const std::vector<ColumnVector>>(
      MakeMixedData(schema, 10, 3));
  auto staged = StageRowGroup(schema, wopts, batch);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  EXPECT_EQ(staged->row_count, 10u);
  EXPECT_EQ(staged->order, wopts.column_order);
  // ceil(10/4) = 3 pages per column, 5 columns.
  ASSERT_EQ(staged->num_tasks(), 15u);
  ASSERT_EQ(staged->column_task_begin.size(), 6u);
  for (size_t oi = 0; oi < staged->order.size(); ++oi) {
    EXPECT_EQ(staged->column_task_begin[oi], oi * 3);
    for (size_t t = staged->column_task_begin[oi];
         t < staged->column_task_begin[oi + 1]; ++t) {
      EXPECT_EQ(staged->tasks[t].column, staged->order[oi]);
    }
  }
  // Page ranges tile [0, rows) in order: [0,4) [4,8) [8,10).
  EXPECT_EQ(staged->tasks[0].row_begin, 0u);
  EXPECT_EQ(staged->tasks[0].row_end, 4u);
  EXPECT_EQ(staged->tasks[2].row_begin, 8u);
  EXPECT_EQ(staged->tasks[2].row_end, 10u);
}

TEST(StageRowGroup, RejectsEmptyAndRaggedBatches) {
  Schema schema = MakeMixedSchema();
  WriterOptions wopts;
  auto empty = std::make_shared<const std::vector<ColumnVector>>(
      [&] {
        std::vector<ColumnVector> cols;
        for (const LeafColumn& leaf : schema.leaves()) {
          cols.push_back(ColumnVector::ForLeaf(leaf));
        }
        return cols;
      }());
  EXPECT_FALSE(StageRowGroup(schema, wopts, empty).ok());

  auto ragged = std::make_shared<std::vector<ColumnVector>>(
      MakeMixedData(schema, 10, 1));
  (*ragged)[0].AppendInt(7);  // now 11 rows vs 10 everywhere else
  EXPECT_FALSE(
      StageRowGroup(schema, wopts,
                    std::shared_ptr<const std::vector<ColumnVector>>(ragged))
          .ok());
}

// ------------------------------------------------- single-file identity

TEST(ParallelWrite, ByteIdenticalToSerialAtEveryThreadCount) {
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < 6; ++g) {
    groups.push_back(MakeMixedData(schema, 400, 100 + g));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 64;

  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("serial");
    TableWriter writer(schema, f->get(), wopts);
    for (const auto& g : groups) ASSERT_TRUE(writer.WriteRowGroup(g).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::vector<uint8_t> truth = FileBytes(fs, "serial");

  for (size_t threads : {1, 2, 4, 8}) {
    std::string name = "par" + std::to_string(threads);
    auto f = fs.NewWritableFile(name);
    auto writer = WriteBuilder(schema, f->get())
                      .Options(wopts)
                      .Threads(threads)
                      .MaxPendingGroups(3)
                      .Build();
    ASSERT_TRUE(writer.ok());
    for (const auto& g : groups) {
      ASSERT_TRUE((*writer)->WriteRowGroup(g).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
    EXPECT_EQ((*writer)->num_rows(), 2400u);
    EXPECT_EQ(FileBytes(fs, name), truth) << "threads=" << threads;
  }
}

TEST(ParallelWrite, SingleRowGroupsAndTinyPages) {
  // Single-row groups with rows_per_page=1 maximize task count and
  // scheduling interleavings; bytes must not change.
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < 12; ++g) {
    groups.push_back(MakeMixedData(schema, 1, 500 + g));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 1;

  InMemoryFileSystem fs;
  auto fserial = fs.NewWritableFile("serial");
  ASSERT_TRUE(WriteTableFile(fserial->get(), schema, groups, wopts).ok());
  std::vector<uint8_t> truth = FileBytes(fs, "serial");

  auto fpar = fs.NewWritableFile("par");
  ASSERT_TRUE(
      WriteTableFile(fpar->get(), schema, groups, wopts, /*threads=*/4).ok());
  EXPECT_EQ(FileBytes(fs, "par"), truth);

  auto reader = TableReader::Open(*fs.NewReadableFile("par"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 12u);
  EXPECT_EQ((*reader)->num_row_groups(), 12u);
}

TEST(ParallelWrite, ZeroRowGroupsWritesFooterOnly) {
  Schema schema = MakeMixedSchema();
  InMemoryFileSystem fs;
  auto fserial = fs.NewWritableFile("serial");
  {
    TableWriter writer(schema, fserial->get(), {});
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto fpar = fs.NewWritableFile("par");
  auto writer = WriteBuilder(schema, fpar->get()).Threads(4).Build();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_EQ(FileBytes(fs, "par"), FileBytes(fs, "serial"));
}

TEST(ParallelWrite, QualitySortAndColumnOrderIdentical) {
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < 4; ++g) {
    groups.push_back(MakeMixedData(schema, 300, 700 + g));
  }
  WriterOptions wopts;
  wopts.rows_per_page = 32;
  wopts.column_order = {4, 3, 1, 0, 2};
  wopts.quality_sort_column = 1;  // "score"

  InMemoryFileSystem fs;
  auto fserial = fs.NewWritableFile("serial");
  ASSERT_TRUE(WriteTableFile(fserial->get(), schema, groups, wopts).ok());
  auto fpar = fs.NewWritableFile("par");
  ASSERT_TRUE(
      WriteTableFile(fpar->get(), schema, groups, wopts, /*threads=*/8).ok());
  EXPECT_EQ(FileBytes(fs, "par"), FileBytes(fs, "serial"));

  // The parallel-written file round-trips through the reader.
  auto reader = TableReader::Open(*fs.NewReadableFile("par"));
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->VerifyChecksums().ok());
}

TEST(ParallelWrite, SharedPoolAcrossWriters) {
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < 4; ++g) {
    groups.push_back(MakeMixedData(schema, 200, 40 + g));
  }
  InMemoryFileSystem fs;
  auto fserial = fs.NewWritableFile("serial");
  ASSERT_TRUE(WriteTableFile(fserial->get(), schema, groups, {}).ok());
  std::vector<uint8_t> truth = FileBytes(fs, "serial");

  ThreadPool pool(4);
  auto fa = fs.NewWritableFile("a");
  auto fb = fs.NewWritableFile("b");
  auto wa = WriteBuilder(schema, fa->get()).Pool(&pool).Build();
  auto wb = WriteBuilder(schema, fb->get()).Pool(&pool).Build();
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  // Interleave submissions so both writers' encodes share the pool.
  for (const auto& g : groups) {
    ASSERT_TRUE((*wa)->WriteRowGroup(g).ok());
    ASSERT_TRUE((*wb)->WriteRowGroup(g).ok());
  }
  ASSERT_TRUE((*wa)->Finish().ok());
  ASSERT_TRUE((*wb)->Finish().ok());
  EXPECT_EQ(FileBytes(fs, "a"), truth);
  EXPECT_EQ(FileBytes(fs, "b"), truth);
}

TEST(ParallelWrite, BadBatchIsRejectedWithoutBrickingTheWriter) {
  Schema schema = MakeMixedSchema();
  InMemoryFileSystem fs;
  auto f = fs.NewWritableFile("t");
  auto writer = WriteBuilder(schema, f->get()).Threads(2).Build();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteRowGroup(MakeMixedData(schema, 50, 1)).ok());
  // Wrong leaf count fails the stage step, which touches no file or
  // footer state...
  std::vector<ColumnVector> bad;
  bad.push_back(ColumnVector(PhysicalType::kInt64, 0));
  bad[0].AppendInt(1);
  Status st = (*writer)->WriteRowGroup(std::move(bad));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // ...so, like the serial TableWriter, the writer stays usable: a
  // corrected batch and Finish succeed, and the file round-trips.
  EXPECT_TRUE((*writer)->WriteRowGroup(MakeMixedData(schema, 50, 2)).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto reader = TableReader::Open(*fs.NewReadableFile("t"));
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_rows(), 100u);
  EXPECT_EQ((*reader)->num_row_groups(), 2u);
}

// ---------------------------------------------------- sharded identity

TEST(ShardedWrite, ByteIdenticalAcrossThreadCounts) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> all = MakeMixedData(schema, 1000, 42);

  auto write = [&](InMemoryFileSystem* fs, size_t threads) {
    auto writer = ShardedWriteBuilder(schema,
                                      [fs](const std::string& name) {
                                        return fs->NewWritableFile(name);
                                      })
                      .BaseName("t")
                      .RowsPerShard(250)
                      .RowsPerGroup(100)
                      .RowsPerPage(32)
                      .Threads(threads)
                      .Build();
    EXPECT_TRUE(writer.ok());
    EXPECT_TRUE((*writer)->Append(all).ok());
    auto manifest = (*writer)->Finish();
    EXPECT_TRUE(manifest.ok());
    return *manifest;
  };

  InMemoryFileSystem serial_fs;
  ShardManifest truth = write(&serial_fs, 1);
  ASSERT_EQ(truth.num_shards(), 4u);

  for (size_t threads : {2, 4, 8}) {
    InMemoryFileSystem fs;
    ShardManifest manifest = write(&fs, threads);
    ASSERT_EQ(manifest.num_shards(), truth.num_shards())
        << "threads=" << threads;
    for (size_t s = 0; s < truth.num_shards(); ++s) {
      EXPECT_EQ(manifest.shard(s).name, truth.shard(s).name);
      EXPECT_EQ(manifest.shard(s).num_rows, truth.shard(s).num_rows);
      EXPECT_EQ(manifest.shard(s).num_row_groups,
                truth.shard(s).num_row_groups);
      EXPECT_EQ(FileBytes(fs, truth.shard(s).name),
                FileBytes(serial_fs, truth.shard(s).name))
          << "threads=" << threads << " shard=" << s;
    }
  }
}

TEST(ShardedWrite, ManyShardsEncodeConcurrentlyOnOnePool) {
  // Tiny shards + a wide window: groups of several shards are in the
  // encode stage at once, all on one shared pool. Output must still be
  // byte-identical, and the result must read back as one table.
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> all = MakeMixedData(schema, 600, 9);

  InMemoryFileSystem serial_fs;
  InMemoryFileSystem par_fs;
  ThreadPool pool(4);
  auto write = [&](InMemoryFileSystem* fs, ThreadPool* p) {
    auto writer = ShardedWriteBuilder(schema,
                                      [fs](const std::string& name) {
                                        return fs->NewWritableFile(name);
                                      })
                      .BaseName("t")
                      .RowsPerShard(50)  // 12 shards
                      .RowsPerGroup(50)
                      .RowsPerPage(16)
                      .MaxPendingGroups(8)
                      .Pool(p)
                      .Build();
    EXPECT_TRUE(writer.ok());
    // Stream in odd-sized batches to exercise group slicing.
    EXPECT_TRUE((*writer)->Append(all).ok());
    return *(*writer)->Finish();
  };
  ShardManifest truth = write(&serial_fs, nullptr);
  ShardManifest manifest = write(&par_fs, &pool);
  ASSERT_EQ(truth.num_shards(), 12u);
  ASSERT_EQ(manifest.num_shards(), 12u);
  for (size_t s = 0; s < truth.num_shards(); ++s) {
    EXPECT_EQ(FileBytes(par_fs, truth.shard(s).name),
              FileBytes(serial_fs, truth.shard(s).name))
        << "shard=" << s;
  }

  // The parallel-written dataset scans as one logical table, equal to
  // the original stream.
  auto ds = ShardedTableReader::Open(manifest, [&](const std::string& n) {
    return par_fs.NewReadableFile(n);
  });
  ASSERT_TRUE(ds.ok());
  auto scan = DatasetScanBuilder(ds->get()).Threads(4).Scan();
  ASSERT_TRUE(scan.ok());
  for (size_t c = 0; c < all.size(); ++c) {
    EXPECT_EQ(*scan->ConcatColumn(c), all[c]) << "column " << c;
  }
}

TEST(ShardedWrite, TwoWritersShareOnePoolConcurrently) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> all = MakeMixedData(schema, 400, 11);

  auto write = [&](InMemoryFileSystem* fs, ThreadPool* p) {
    auto writer = ShardedWriteBuilder(schema,
                                      [fs](const std::string& name) {
                                        return fs->NewWritableFile(name);
                                      })
                      .BaseName("t")
                      .RowsPerShard(100)
                      .RowsPerGroup(50)
                      .RowsPerPage(16)
                      .Pool(p)
                      .Build();
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(all).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  };

  InMemoryFileSystem serial_fs;
  write(&serial_fs, nullptr);

  ThreadPool pool(4);
  InMemoryFileSystem fs_a, fs_b;
  std::thread ta([&] { write(&fs_a, &pool); });
  std::thread tb([&] { write(&fs_b, &pool); });
  ta.join();
  tb.join();

  for (size_t s = 0; s < 4; ++s) {
    std::string name = ShardedTableWriter::ShardName("t", s);
    EXPECT_EQ(FileBytes(fs_a, name), FileBytes(serial_fs, name));
    EXPECT_EQ(FileBytes(fs_b, name), FileBytes(serial_fs, name));
  }
}

TEST(ShardedWrite, NumRowsIncludesBufferedRows) {
  Schema schema = MakeMixedSchema();
  InMemoryFileSystem fs;
  auto writer = ShardedWriteBuilder(schema,
                                    [&](const std::string& name) {
                                      return fs.NewWritableFile(name);
                                    })
                    .RowsPerGroup(1000)  // 100 rows stay buffered
                    .Build();
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeMixedData(schema, 100, 5)).ok());
  EXPECT_EQ((*writer)->num_rows(), 100u);
  auto manifest = (*writer)->Finish();
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->total_rows(), 100u);
}

// ----------------------------------------------------------- accounting

TEST(WriteStats, CountsPagesBytesAndFlushes) {
  Schema schema = MakeMixedSchema();
  std::vector<std::vector<ColumnVector>> groups;
  for (size_t g = 0; g < 3; ++g) {
    groups.push_back(MakeMixedData(schema, 100, 20 + g));
  }

  InMemoryFileSystem serial_fs;
  WriterOptions wopts;
  wopts.rows_per_page = 32;
  wopts.stats = &serial_fs.stats();
  auto fserial = serial_fs.NewWritableFile("t");
  ASSERT_TRUE(WriteTableFile(fserial->get(), schema, groups, wopts).ok());
  // ceil(100/32) = 4 pages per column per group, 5 leaves, 3 groups.
  EXPECT_EQ(serial_fs.stats().pages_encoded.load(), 4u * 5u * 3u);
  EXPECT_GE(serial_fs.stats().flush_calls.load(), 1u);
  uint64_t serial_ops = serial_fs.stats().write_ops.load();
  uint64_t serial_bytes = serial_fs.stats().bytes_written.load();
  EXPECT_GT(serial_bytes, 0u);

  // The parallel writer performs the identical committed I/O.
  InMemoryFileSystem par_fs;
  WriterOptions popts = wopts;
  popts.stats = &par_fs.stats();
  auto fpar = par_fs.NewWritableFile("t");
  ASSERT_TRUE(
      WriteTableFile(fpar->get(), schema, groups, popts, /*threads=*/4).ok());
  EXPECT_EQ(par_fs.stats().pages_encoded.load(), 4u * 5u * 3u);
  EXPECT_EQ(par_fs.stats().write_ops.load(), serial_ops);
  EXPECT_EQ(par_fs.stats().bytes_written.load(), serial_bytes);
}

}  // namespace
}  // namespace bullion

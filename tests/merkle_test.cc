// Merkle checksum tree tests (§2.1, Fig. 2).

#include <gtest/gtest.h>

#include "common/random.h"
#include "format/merkle.h"

namespace bullion {
namespace {

MerkleTree MakeTree(size_t groups, size_t pages_per_group, uint64_t seed) {
  Random rng(seed);
  std::vector<uint64_t> hashes(groups * pages_per_group);
  for (auto& h : hashes) h = rng.Next();
  std::vector<uint32_t> ppg(groups,
                            static_cast<uint32_t>(pages_per_group));
  return MerkleTree(std::move(hashes), std::move(ppg));
}

TEST(Merkle, BuildAndVerify) {
  MerkleTree tree = MakeTree(8, 16, 1);
  EXPECT_TRUE(tree.Verify());
  EXPECT_NE(tree.root(), 0u);
}

TEST(Merkle, UpdateChangesRoot) {
  MerkleTree tree = MakeTree(8, 16, 2);
  uint64_t old_root = tree.root();
  tree.UpdatePage(37, 0xDEADBEEF);
  EXPECT_NE(tree.root(), old_root);
  EXPECT_TRUE(tree.Verify());
}

TEST(Merkle, UpdateMatchesRebuild) {
  MerkleTree a = MakeTree(4, 8, 3);
  MerkleTree b = MakeTree(4, 8, 3);
  a.UpdatePage(13, 0x1234);
  b.UpdatePage(13, 0x1234);
  b.RebuildAll();
  EXPECT_EQ(a.root(), b.root());
  for (uint32_t g = 0; g < 4; ++g) {
    EXPECT_EQ(a.group_hash(g), b.group_hash(g));
  }
}

TEST(Merkle, IncrementalCostIsLocal) {
  // Incremental folds = pages in one group + number of groups; full
  // rebuild = all pages + number of groups.
  MerkleTree tree = MakeTree(64, 64, 4);
  size_t inc = tree.UpdatePage(100, 7);
  size_t full = tree.RebuildAll();
  EXPECT_EQ(inc, 64u + 64u);
  EXPECT_EQ(full, 64u * 64u + 64u);
  EXPECT_GT(full, inc * 10);
}

TEST(Merkle, OrderSensitivity) {
  // Swapping two page hashes must change the root (order-dependent
  // fold), otherwise tampering by reordering would go undetected.
  std::vector<uint64_t> h1 = {1, 2, 3, 4};
  std::vector<uint64_t> h2 = {2, 1, 3, 4};
  MerkleTree a(h1, {4});
  MerkleTree b(h2, {4});
  EXPECT_NE(a.root(), b.root());
}

TEST(Merkle, RaggedGroups) {
  std::vector<uint64_t> hashes = {10, 20, 30, 40, 50};
  MerkleTree tree(hashes, {2, 3});
  EXPECT_TRUE(tree.Verify());
  size_t folds = tree.UpdatePage(4, 99);
  EXPECT_EQ(folds, 3u + 2u);  // group of 3 pages + 2 group folds
  EXPECT_TRUE(tree.Verify());
}

TEST(Merkle, HashPageDeterminism) {
  std::vector<uint8_t> data(1024);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  uint64_t h1 = HashPage(Slice(data.data(), data.size()));
  uint64_t h2 = HashPage(Slice(data.data(), data.size()));
  EXPECT_EQ(h1, h2);
  data[512] ^= 1;
  EXPECT_NE(HashPage(Slice(data.data(), data.size())), h1);
}

}  // namespace
}  // namespace bullion

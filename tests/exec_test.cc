// Exec-layer tests: thread pool / task group semantics, ScanBuilder
// behavior, and the headline determinism claim — a parallel scan is
// byte-identical to the serial TableReader path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

#include "core/bullion.h"

namespace bullion {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryScheduledTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    // Destructor joins after draining the queue.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int x = 0;
  pool.Schedule([&x] { x = 42; });
  EXPECT_EQ(x, 42);
}

TEST(TaskGroup, WaitCollectsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  TaskGroup group(&pool, /*max_in_flight=*/4);
  for (int i = 0; i < 50; ++i) {
    group.Submit([&counter] {
      counter.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroup, ReportsFirstErrorInSubmissionOrder) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Submit([] { return Status::OK(); });
  group.Submit([] { return Status::Corruption("first failure"); });
  group.Submit([] { return Status::InvalidArgument("second failure"); });
  Status st = group.Wait();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(TaskGroup, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int x = 0;
  group.Submit([&x] {
    x = 7;
    return Status::OK();
  });
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(x, 7);
}

// ------------------------------------------------------------- scanner

Schema MakeMixedSchema() {
  std::vector<Field> fields;
  fields.push_back({"uid", DataType::Primitive(PhysicalType::kInt64),
                    LogicalType::kPlain, true});
  fields.push_back({"score", DataType::Primitive(PhysicalType::kFloat64),
                    LogicalType::kQualityScore, false});
  fields.push_back({"tag", DataType::Primitive(PhysicalType::kBinary),
                    LogicalType::kPlain, false});
  fields.push_back({"clk_seq",
                    DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                    LogicalType::kIdSequence, false});
  fields.push_back({"emb",
                    DataType::List(DataType::Primitive(PhysicalType::kFloat32)),
                    LogicalType::kEmbedding, false});
  return Schema(std::move(fields));
}

std::vector<ColumnVector> MakeMixedData(const Schema& schema, size_t rows,
                                        uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window;
  for (size_t r = 0; r < rows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(r / 3));
    cols[1].AppendReal(rng.NextDouble());
    cols[2].AppendBinary("tag" + std::to_string(r % 7));
    if (window.empty() || rng.Bernoulli(0.25)) {
      window.insert(window.begin(), rng.UniformRange(0, 99));
      if (window.size() > 12) window.pop_back();
    }
    cols[3].AppendIntList(window);
    std::vector<double> emb(6);
    for (double& x : emb) x = std::tanh(rng.NextGaussian());
    cols[4].AppendRealList(emb);
  }
  return cols;
}

struct ScanFixture {
  InMemoryFileSystem fs;
  Schema schema = MakeMixedSchema();
  std::unique_ptr<TableReader> reader;

  explicit ScanFixture(size_t groups, size_t rows_per_group = 400) {
    std::vector<std::vector<ColumnVector>> data;
    for (size_t g = 0; g < groups; ++g) {
      data.push_back(MakeMixedData(schema, rows_per_group, 1000 + g));
    }
    WriterOptions wopts;
    wopts.rows_per_page = 64;
    auto f = fs.NewWritableFile("t");
    EXPECT_TRUE(WriteTableFile(f->get(), schema, data, wopts).ok());
    reader = *TableReader::Open(*fs.NewReadableFile("t"));
  }
};

TEST(Scanner, ParallelScanIsByteIdenticalToSerialReader) {
  ScanFixture fx(6);
  std::vector<uint32_t> projection = {0, 2, 4};

  // Ground truth: the serial TableReader path, group by group.
  std::vector<std::vector<ColumnVector>> serial(6);
  ReadOptions ropts;
  for (uint32_t g = 0; g < 6; ++g) {
    ASSERT_TRUE(
        fx.reader->ReadProjection(g, projection, ropts, &serial[g]).ok());
  }

  for (size_t threads : {1, 2, 4, 8}) {
    auto scan = ScanBuilder(fx.reader.get())
                    .ColumnIndices(projection)
                    .Threads(threads)
                    .Scan();
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    ASSERT_EQ(scan->groups.size(), serial.size());
    for (size_t g = 0; g < serial.size(); ++g) {
      ASSERT_EQ(scan->groups[g].size(), serial[g].size());
      for (size_t c = 0; c < serial[g].size(); ++c) {
        EXPECT_EQ(scan->groups[g][c], serial[g][c])
            << "threads=" << threads << " group=" << g << " slot=" << c;
      }
    }
  }
}

TEST(Scanner, TinyCoalesceWindowStillDeterministic) {
  // Forcing one read per chunk maximizes task count and scheduling
  // interleavings; output must not change.
  ScanFixture fx(4);
  ReadOptions tight;
  tight.coalesce_gap_bytes = 0;
  tight.max_coalesced_bytes = 1;

  auto serial = ScanBuilder(fx.reader.get()).Options(tight).Threads(1).Scan();
  auto parallel = ScanBuilder(fx.reader.get()).Options(tight).Threads(4).Scan();
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->groups, serial->groups);
}

TEST(Scanner, ColumnNamesResolveInProjectionOrder) {
  ScanFixture fx(2);
  auto scan = ScanBuilder(fx.reader.get())
                  .Columns({"score", "uid"})
                  .Threads(2)
                  .Scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->columns.size(), 2u);
  EXPECT_EQ(fx.reader->footer().column_name(scan->columns[0]), "score");
  EXPECT_EQ(fx.reader->footer().column_name(scan->columns[1]), "uid");
  EXPECT_EQ(scan->groups[0][1].physical(), PhysicalType::kInt64);
}

TEST(Scanner, DefaultProjectionIsAllLeaves) {
  ScanFixture fx(2);
  auto scan = ScanBuilder(fx.reader.get()).Threads(2).Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->columns.size(), fx.schema.num_leaves());
  EXPECT_EQ(scan->num_rows(), 800u);
}

TEST(Scanner, RowGroupRangeSelectsSubset) {
  ScanFixture fx(5);
  auto scan = ScanBuilder(fx.reader.get())
                  .ColumnIndices({1})
                  .RowGroups(1, 3)
                  .Threads(3)
                  .Scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->num_groups(), 2u);
  EXPECT_EQ(scan->group_begin, 1u);

  std::vector<ColumnVector> expect;
  ReadOptions ropts;
  ASSERT_TRUE(fx.reader->ReadProjection(1, {1}, ropts, &expect).ok());
  EXPECT_EQ(scan->groups[0][0], expect[0]);
}

TEST(Scanner, ConcatColumnMatchesPerChunkReads) {
  ScanFixture fx(3);
  // Ground truth: the pre-exec-layer idiom — append every chunk of the
  // column into one vector with ReadColumnChunk.
  ColumnVector expect(PhysicalType::kFloat64, 0);
  ReadOptions ropts;
  for (uint32_t g = 0; g < 3; ++g) {
    ColumnVector chunk;
    ASSERT_TRUE(fx.reader->ReadColumnChunk(g, 1, ropts, &chunk).ok());
    expect.AppendAllFrom(chunk);
  }

  for (size_t threads : {1, 4}) {
    auto col = ReadFullColumn(fx.reader.get(), "score", ropts, threads);
    ASSERT_TRUE(col.ok());
    EXPECT_EQ(*col, expect) << "threads=" << threads;
  }
}

TEST(ColumnVector, BulkAppendAllFromMatchesPerRowAppend) {
  Schema schema = MakeMixedSchema();
  std::vector<ColumnVector> a = MakeMixedData(schema, 120, 1);
  std::vector<ColumnVector> b = MakeMixedData(schema, 75, 2);
  for (size_t c = 0; c < a.size(); ++c) {
    ColumnVector bulk(a[c].physical(), a[c].list_depth());
    bulk.AppendAllFrom(a[c]);
    bulk.AppendAllFrom(b[c]);
    ColumnVector per_row(a[c].physical(), a[c].list_depth());
    for (const ColumnVector* src : {&a[c], &b[c]}) {
      for (size_t r = 0; r < src->num_rows(); ++r) {
        per_row.AppendRowFrom(*src, static_cast<int64_t>(r));
      }
    }
    EXPECT_EQ(bulk, per_row) << "column " << c;
  }
  // Depth-2 list<list<int>> exercises multi-level offset rebasing.
  ColumnVector d2a(PhysicalType::kInt64, 2), d2b(PhysicalType::kInt64, 2);
  d2a.AppendIntListList({{1, 2}, {3}});
  d2a.AppendIntListList({});
  d2b.AppendIntListList({{4}, {}, {5, 6, 7}});
  ColumnVector bulk(PhysicalType::kInt64, 2);
  bulk.AppendAllFrom(d2a);
  bulk.AppendAllFrom(d2b);
  ColumnVector per_row(PhysicalType::kInt64, 2);
  for (const ColumnVector* src : {&d2a, &d2b}) {
    for (size_t r = 0; r < src->num_rows(); ++r) {
      per_row.AppendRowFrom(*src, static_cast<int64_t>(r));
    }
  }
  EXPECT_EQ(bulk, per_row);
}

TEST(Scanner, WellFormedEmptyRowGroupRangePastEndSucceeds) {
  ScanFixture fx(3);
  auto scan = ScanBuilder(fx.reader.get()).RowGroups(5, 5).Scan();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->num_groups(), 0u);
  EXPECT_EQ(scan->num_rows(), 0u);
}

TEST(Scanner, ZeroColumnProjectionIsEmptyNotError) {
  ScanFixture fx(2);
  std::vector<ColumnVector> out;
  ReadOptions ropts;
  ASSERT_TRUE(fx.reader->ReadProjection(0, {}, ropts, &out).ok());
  EXPECT_TRUE(out.empty());
  auto plan = fx.reader->PlanProjection(0, {}, ropts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_reads(), 0u);
}

TEST(Scanner, SingleColumnProjectionIsOneRead) {
  ScanFixture fx(2);
  ReadOptions ropts;
  auto plan = fx.reader->PlanProjection(0, {3}, ropts);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->num_reads(), 1u);
  EXPECT_EQ(plan->reads[0].chunks.size(), 1u);

  auto scan =
      ScanBuilder(fx.reader.get()).ColumnIndices({3}).Threads(2).Scan();
  ASSERT_TRUE(scan.ok());
  std::vector<ColumnVector> expect;
  ASSERT_TRUE(fx.reader->ReadProjection(0, {3}, ropts, &expect).ok());
  EXPECT_EQ(scan->groups[0][0], expect[0]);
}

TEST(Scanner, InvalidColumnOrRangeFails) {
  ScanFixture fx(2);
  EXPECT_FALSE(
      ScanBuilder(fx.reader.get()).ColumnIndices({999}).Scan().ok());
  EXPECT_FALSE(
      ScanBuilder(fx.reader.get()).Columns({"nope"}).Scan().ok());
  EXPECT_FALSE(ScanBuilder(fx.reader.get()).RowGroups(3, 1).Scan().ok());
}

TEST(Scanner, SharedPoolAcrossScans) {
  ScanFixture fx(3);
  ThreadPool pool(3);
  auto a = ScanBuilder(fx.reader.get()).Pool(&pool).Scan();
  auto b = ScanBuilder(fx.reader.get()).Pool(&pool).Scan();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->groups, b->groups);
}

TEST(Scanner, ParallelScanKeepsIoAccountingConsistent) {
  ScanFixture fx(4);
  fx.fs.ResetStats();
  auto serial = ScanBuilder(fx.reader.get()).Threads(1).Scan();
  ASSERT_TRUE(serial.ok());
  uint64_t serial_ops = fx.fs.stats().read_ops;
  uint64_t serial_bytes = fx.fs.stats().bytes_read;

  fx.fs.ResetStats();
  auto parallel = ScanBuilder(fx.reader.get()).Threads(4).Scan();
  ASSERT_TRUE(parallel.ok());
  // Same plan executes either way: op and byte counts must match
  // exactly even though the interleaving differs.
  EXPECT_EQ(fx.fs.stats().read_ops, serial_ops);
  EXPECT_EQ(fx.fs.stats().bytes_read, serial_bytes);
}

}  // namespace
}  // namespace bullion

// Compliance-deletion tests: deletion vectors (level 1), in-place
// masking (level 2) across every maskable encoding, Merkle checksum
// maintenance, and size consistency.

#include <gtest/gtest.h>

#include "common/random.h"
#include "format/column_vector.h"
#include "format/deletion.h"
#include "format/page.h"
#include "format/reader.h"
#include "format/schema.h"
#include "format/writer.h"
#include "io/file.h"

namespace bullion {
namespace {

struct Fixture {
  InMemoryFileSystem fs;
  Schema schema;
  std::vector<ColumnVector> data;

  explicit Fixture(const std::string& value_kind, size_t rows = 2000,
                   uint64_t seed = 5) {
    std::vector<Field> fields;
    fields.push_back({"v", DataType::Primitive(PhysicalType::kInt64),
                      LogicalType::kPlain, true});
    fields.push_back({"ids",
                      DataType::List(DataType::Primitive(PhysicalType::kInt64)),
                      LogicalType::kPlain, true});
    schema = Schema(std::move(fields));
    Random rng(seed);
    ColumnVector v(PhysicalType::kInt64, 0);
    ColumnVector ids(PhysicalType::kInt64, 1);
    for (size_t r = 0; r < rows; ++r) {
      if (value_kind == "low_card") {
        v.AppendInt(rng.UniformRange(0, 7));
      } else if (value_kind == "runs") {
        v.AppendInt(static_cast<int64_t>(r / 50));
      } else if (value_kind == "varint_friendly") {
        v.AppendInt(rng.UniformRange(0, 1 << 20));
      } else if (value_kind == "negatives") {
        v.AppendInt(rng.UniformRange(-1000000, 1000000));
      } else {
        v.AppendInt(static_cast<int64_t>(rng.Next()));
      }
      std::vector<int64_t> list(3 + rng.Uniform(3));
      for (auto& x : list) x = rng.UniformRange(0, 500);
      ids.AppendIntList(list);
    }
    data.push_back(std::move(v));
    data.push_back(std::move(ids));
  }

  Status Write(WriterOptions wopts = {}) {
    wopts.rows_per_page = 256;
    auto f = fs.NewWritableFile("t");
    if (!f.ok()) return f.status();
    TableWriter writer(schema, f->get(), wopts);
    BULLION_RETURN_NOT_OK(writer.WriteRowGroup(data));
    return writer.Finish();
  }

  Result<std::unique_ptr<TableReader>> OpenReader() {
    auto f = fs.NewReadableFile("t");
    if (!f.ok()) return f.status();
    return TableReader::Open(std::move(*f));
  }

  Result<DeleteReport> Delete(const std::vector<uint64_t>& rows,
                              ComplianceLevel level) {
    auto rf = fs.NewReadableFile("t");
    if (!rf.ok()) return rf.status();
    auto uf = fs.OpenForUpdate("t");
    if (!uf.ok()) return uf.status();
    auto reader = TableReader::Open(std::move(*rf));
    if (!reader.ok()) return reader.status();
    auto rf2 = fs.NewReadableFile("t");
    DeleteExecutor exec(rf2->get(), uf->get(), (*reader)->footer());
    return exec.DeleteRows(rows, level);
  }
};

class DeletionByKind : public ::testing::TestWithParam<std::string> {};

TEST_P(DeletionByKind, Level2MasksAndFilters) {
  Fixture fx(GetParam());
  ASSERT_TRUE(fx.Write().ok());

  std::vector<uint64_t> to_delete = {3, 4, 5, 100, 999, 1500, 1999};
  auto report = fx.Delete(to_delete, ComplianceLevel::kLevel2);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, to_delete.size());
  EXPECT_GT(report->pages_rewritten, 0u);

  auto reader = *fx.OpenReader();
  // Checksums must still verify after in-place updates (Merkle path
  // was maintained).
  EXPECT_TRUE(reader->VerifyChecksums().ok());

  ReadOptions filter;
  filter.filter_deleted = true;
  ColumnVector v;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, filter, &v).ok());
  EXPECT_EQ(v.num_rows(), fx.data[0].num_rows() - to_delete.size());
  // Surviving values must be the original non-deleted values in order.
  size_t vi = 0;
  for (size_t r = 0; r < fx.data[0].num_rows(); ++r) {
    if (std::find(to_delete.begin(), to_delete.end(), r) != to_delete.end()) {
      continue;
    }
    ASSERT_EQ(v.int_values()[vi], fx.data[0].int_values()[r]) << "row " << r;
    ++vi;
  }

  ColumnVector ids;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 1, filter, &ids).ok());
  EXPECT_EQ(ids.num_rows(), fx.data[1].num_rows() - to_delete.size());
}

TEST_P(DeletionByKind, Level2PhysicallyErases) {
  Fixture fx(GetParam());
  ASSERT_TRUE(fx.Write().ok());

  // Pick a row whose value is distinctive, then check the raw bytes.
  std::vector<uint64_t> to_delete = {700};
  ASSERT_TRUE(fx.Delete(to_delete, ComplianceLevel::kLevel2).ok());

  auto reader = *fx.OpenReader();
  ReadOptions keep;
  keep.filter_deleted = false;
  ColumnVector v;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, keep, &v).ok());
  ASSERT_EQ(v.num_rows(), fx.data[0].num_rows());
  // The deleted slot must no longer decode to the original value,
  // unless the original value happens to equal the masked placeholder.
  int64_t original = fx.data[0].int_values()[700];
  int64_t masked = v.int_values()[700];
  if (original != 0) {
    EXPECT_NE(masked, original)
        << "deleted value still recoverable from storage";
  }
}

TEST_P(DeletionByKind, Level1OnlySetsVectors) {
  Fixture fx(GetParam());
  ASSERT_TRUE(fx.Write().ok());
  auto report = fx.Delete({10, 20, 30}, ComplianceLevel::kLevel1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pages_rewritten, 0u);
  EXPECT_EQ(report->page_bytes_written, 0u);

  auto reader = *fx.OpenReader();
  ReadOptions filter;
  ColumnVector v;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, filter, &v).ok());
  EXPECT_EQ(v.num_rows(), fx.data[0].num_rows() - 3);

  // Level 1 leaves the physical data intact.
  ReadOptions keep;
  keep.filter_deleted = false;
  ColumnVector raw;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, keep, &raw).ok());
  EXPECT_EQ(raw.int_values()[10], fx.data[0].int_values()[10]);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DeletionByKind,
                         ::testing::Values("low_card", "runs",
                                           "varint_friendly", "negatives",
                                           "wide"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST(Deletion, RepeatedDeletesAccumulate) {
  Fixture fx("runs");
  ASSERT_TRUE(fx.Write().ok());
  ASSERT_TRUE(fx.Delete({1, 2, 3}, ComplianceLevel::kLevel2).ok());
  ASSERT_TRUE(fx.Delete({4, 5, 6}, ComplianceLevel::kLevel2).ok());
  // Deleting already-deleted rows is a no-op.
  auto rep = fx.Delete({1, 2, 3}, ComplianceLevel::kLevel2);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->rows_deleted, 0u);

  auto reader = *fx.OpenReader();
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  ReadOptions filter;
  ColumnVector v;
  ASSERT_TRUE(reader->ReadColumnChunk(0, 0, filter, &v).ok());
  EXPECT_EQ(v.num_rows(), fx.data[0].num_rows() - 6);
}

TEST(Deletion, Level0Rejected) {
  Fixture fx("runs");
  ASSERT_TRUE(fx.Write().ok());
  EXPECT_FALSE(fx.Delete({1}, ComplianceLevel::kLevel0).ok());
}

TEST(Deletion, OutOfRangeRowRejected) {
  Fixture fx("runs");
  ASSERT_TRUE(fx.Write().ok());
  EXPECT_FALSE(fx.Delete({1u << 30}, ComplianceLevel::kLevel1).ok());
}

TEST(Deletion, SizeConsistency) {
  // In-place deletion must never change the file size (§2.1 criterion).
  Fixture fx("runs");
  ASSERT_TRUE(fx.Write().ok());
  uint64_t before = *fx.fs.FileSize("t");
  Random rng(9);
  std::vector<uint64_t> rows;
  for (int i = 0; i < 40; ++i) rows.push_back(rng.Uniform(2000));
  ASSERT_TRUE(fx.Delete(rows, ComplianceLevel::kLevel2).ok());
  EXPECT_EQ(*fx.fs.FileSize("t"), before);
}

TEST(Deletion, IoFarBelowFullRewrite) {
  // The §2.1 headline: deleting ~2% of rows costs a small fraction of
  // rewriting the file. Deletes are clustered, as in the paper's
  // GDPR workload (a user's rows are adjacent after uid sorting).
  Fixture fx("varint_friendly", 20000);
  ASSERT_TRUE(fx.Write().ok());
  uint64_t file_size = *fx.fs.FileSize("t");
  std::vector<uint64_t> rows;
  for (uint64_t r = 5000; r < 5400; ++r) rows.push_back(r);  // ~2%, clustered
  auto report = fx.Delete(rows, ComplianceLevel::kLevel2);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->total_bytes_written(), file_size / 10)
      << "in-place deletes should write far less than a full rewrite";
}

TEST(Deletion, MultiGroupDeletes) {
  Fixture fx("low_card", 3000);
  InMemoryFileSystem& fs = fx.fs;
  {
    WriterOptions wopts;
    wopts.rows_per_page = 128;
    auto f = fs.NewWritableFile("t");
    TableWriter writer(fx.schema, f->get(), wopts);
    // Three row groups of 1000 rows each.
    for (int g = 0; g < 3; ++g) {
      std::vector<ColumnVector> group;
      ColumnVector v(PhysicalType::kInt64, 0), ids(PhysicalType::kInt64, 1);
      for (int r = 0; r < 1000; ++r) {
        v.AppendInt(fx.data[0].int_values()[g * 1000 + r]);
        ids.AppendIntList(fx.data[1].IntListAt(g * 1000 + r));
      }
      group.push_back(std::move(v));
      group.push_back(std::move(ids));
      ASSERT_TRUE(writer.WriteRowGroup(group).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
  }
  // Rows spanning all three groups.
  auto rep = fx.Delete({50, 1500, 2999}, ComplianceLevel::kLevel2);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->rows_deleted, 3u);
  auto reader = *fx.OpenReader();
  EXPECT_TRUE(reader->VerifyChecksums().ok());
  ReadOptions filter;
  uint64_t total = 0;
  for (uint32_t g = 0; g < 3; ++g) {
    ColumnVector v;
    ASSERT_TRUE(reader->ReadColumnChunk(g, 0, filter, &v).ok());
    total += v.num_rows();
  }
  EXPECT_EQ(total, 2997u);
}

TEST(MaskPageRows, EveryDeletableEncodingMasks) {
  // Encode pages forcing each maskable path and verify MaskPageRows
  // keeps size and erases content.
  struct Case {
    std::string name;
    std::vector<int64_t> values;
  };
  Random rng(21);
  std::vector<Case> cases;
  {
    Case c{"dict_low_card", {}};
    for (int i = 0; i < 512; ++i) c.values.push_back(rng.UniformRange(0, 5));
    cases.push_back(c);
  }
  {
    Case c{"rle_runs", {}};
    for (int i = 0; i < 512; ++i) c.values.push_back(i / 64);
    cases.push_back(c);
  }
  {
    Case c{"wide_trivial", {}};
    for (int i = 0; i < 512; ++i) {
      c.values.push_back(static_cast<int64_t>(rng.Next()));
    }
    cases.push_back(c);
  }
  for (const Case& c : cases) {
    ColumnVector col(PhysicalType::kInt64, 0);
    for (int64_t v : c.values) col.AppendInt(v);
    PageEncodeOptions popts;
    popts.deletable = true;
    auto page = EncodePage(col, 0, c.values.size(), popts);
    ASSERT_TRUE(page.ok()) << c.name;
    std::vector<uint8_t> bytes(page->data.data(),
                               page->data.data() + page->data.size());
    size_t size_before = bytes.size();
    std::vector<uint32_t> rows = {7, 8, 100};
    std::vector<uint8_t> none(c.values.size(), 0);
    ASSERT_TRUE(MaskPageRows(&bytes, rows, none).ok()) << c.name;
    EXPECT_EQ(bytes.size(), size_before) << c.name;

    // The page must still decode; non-deleted rows must be intact, and
    // masked rows must no longer hold their original values (unless the
    // original value already equals the mask placeholder).
    ColumnVector decoded(PhysicalType::kInt64, 0);
    ASSERT_TRUE(
        DecodePage(Slice(bytes.data(), bytes.size()), &decoded).ok())
        << c.name;
    if (decoded.num_rows() == c.values.size()) {
      // Masking path (no physical removal).
      for (size_t r = 0; r < c.values.size(); ++r) {
        bool is_masked =
            std::find(rows.begin(), rows.end(), r) != rows.end();
        if (!is_masked) {
          EXPECT_EQ(decoded.int_values()[r], c.values[r])
              << c.name << " row " << r;
        } else if (c.values[r] != decoded.int_values()[r]) {
          // Erased, as required.
        }
      }
    } else {
      // RLE removal path: survivors in order.
      ASSERT_EQ(decoded.num_rows(), c.values.size() - rows.size()) << c.name;
      size_t di = 0;
      for (size_t r = 0; r < c.values.size(); ++r) {
        if (std::find(rows.begin(), rows.end(), r) != rows.end()) continue;
        EXPECT_EQ(decoded.int_values()[di++], c.values[r])
            << c.name << " row " << r;
      }
    }
  }
}

}  // namespace
}  // namespace bullion

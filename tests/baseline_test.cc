// Parquet-like baseline tests: thrift-like codec, metadata round-trip,
// data round-trip, delete-by-rewrite.

#include <gtest/gtest.h>

#include "baseline/parquet_like.h"
#include "baseline/thrift_like.h"
#include "common/random.h"
#include "io/file.h"

namespace bullion {
namespace baseline {
namespace {

TEST(ThriftLike, PrimitivesRoundTrip) {
  thriftlike::Writer w;
  w.StructBegin();
  w.FieldI64(1, -12345);
  w.FieldI64(2, 1ll << 40);
  w.FieldBinary(3, "hello");
  w.FieldDouble(4, 3.25);
  w.FieldBool(5, true);
  w.StructEnd();
  Buffer buf = w.Finish();

  thriftlike::Reader r(buf.AsSlice());
  r.StructBegin();
  auto f1 = r.NextField();
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->id, 1);
  EXPECT_EQ(*r.ReadI64(), -12345);
  auto f2 = r.NextField();
  EXPECT_EQ(f2->id, 2);
  EXPECT_EQ(*r.ReadI64(), 1ll << 40);
  auto f3 = r.NextField();
  EXPECT_EQ(f3->id, 3);
  EXPECT_EQ(*r.ReadBinary(), "hello");
  auto f4 = r.NextField();
  EXPECT_EQ(f4->id, 4);
  EXPECT_EQ(*r.ReadDouble(), 3.25);
  auto f5 = r.NextField();
  EXPECT_EQ(f5->id, 5);
  EXPECT_TRUE(f5->bool_value);
  auto stop = r.NextField();
  EXPECT_TRUE(stop->stop);
}

TEST(ThriftLike, LargeFieldIdDeltas) {
  thriftlike::Writer w;
  w.StructBegin();
  w.FieldI64(1, 1);
  w.FieldI64(100, 2);  // delta > 15 -> long form
  w.StructEnd();
  Buffer buf = w.Finish();
  thriftlike::Reader r(buf.AsSlice());
  r.StructBegin();
  EXPECT_EQ((*r.NextField()).id, 1);
  ASSERT_TRUE(r.ReadI64().ok());
  EXPECT_EQ((*r.NextField()).id, 100);
  EXPECT_EQ(*r.ReadI64(), 2);
}

TEST(ThriftLike, SkipUnknownFields) {
  thriftlike::Writer w;
  w.StructBegin();
  w.FieldBinary(7, "unknown payload");
  w.FieldListBegin(8, thriftlike::WireType::kI64, 3);
  w.RawI64(1);
  w.RawI64(2);
  w.RawI64(3);
  w.FieldI64(9, 42);
  w.StructEnd();
  Buffer buf = w.Finish();

  thriftlike::Reader r(buf.AsSlice());
  r.StructBegin();
  int64_t got = 0;
  while (true) {
    auto h = r.NextField();
    ASSERT_TRUE(h.ok());
    if (h->stop) break;
    if (h->id == 9) {
      got = *r.ReadI64();
    } else {
      ASSERT_TRUE(r.SkipValue(h->type).ok());
    }
  }
  EXPECT_EQ(got, 42);
}

FileMetaData MakeMeta(size_t cols, size_t groups) {
  FileMetaData meta;
  meta.num_rows = 1000;
  for (size_t c = 0; c < cols; ++c) {
    meta.schema.push_back(
        {"col_" + std::to_string(c), 3 /*int64*/, 0, 0});
  }
  for (size_t g = 0; g < groups; ++g) {
    RowGroupMeta rg;
    rg.num_rows = 500;
    for (size_t c = 0; c < cols; ++c) {
      ColumnChunkMeta cc;
      cc.path_in_schema = "col_" + std::to_string(c);
      cc.file_offset = static_cast<int64_t>(c * 100);
      cc.total_compressed_size = 100;
      cc.num_values = 500;
      cc.page_offsets = {static_cast<int64_t>(c * 100)};
      cc.page_row_counts = {500};
      cc.encodings = {0};
      cc.stat_min = "abcdefgh";
      cc.stat_max = "zyxwvuts";
      rg.columns.push_back(std::move(cc));
    }
    meta.row_groups.push_back(std::move(rg));
  }
  return meta;
}

TEST(FileMetaDataBlob, RoundTrip) {
  FileMetaData meta = MakeMeta(50, 3);
  Buffer blob = SerializeFileMetaData(meta);
  auto parsed = ParseFileMetaData(blob.AsSlice());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows, meta.num_rows);
  ASSERT_EQ(parsed->schema.size(), meta.schema.size());
  ASSERT_EQ(parsed->row_groups.size(), meta.row_groups.size());
  EXPECT_EQ(parsed->schema[10].name, "col_10");
  const ColumnChunkMeta& cc = parsed->row_groups[1].columns[7];
  EXPECT_EQ(cc.path_in_schema, "col_7");
  EXPECT_EQ(cc.file_offset, 700);
  EXPECT_EQ(cc.page_row_counts, std::vector<int64_t>{500});
  EXPECT_EQ(cc.stat_min, "abcdefgh");
}

TEST(FileMetaDataBlob, SizeScalesWithColumns) {
  Buffer small = SerializeFileMetaData(MakeMeta(100, 1));
  Buffer large = SerializeFileMetaData(MakeMeta(1000, 1));
  EXPECT_GT(large.size(), small.size() * 8);
}

Schema SimpleSchema(size_t cols) {
  std::vector<Field> fields;
  for (size_t c = 0; c < cols; ++c) {
    fields.push_back({"col_" + std::to_string(c),
                      DataType::Primitive(PhysicalType::kInt64),
                      LogicalType::kPlain, false});
  }
  return Schema(std::move(fields));
}

std::vector<ColumnVector> SimpleData(const Schema& schema, size_t rows,
                                     uint64_t seed) {
  Random rng(seed);
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    ColumnVector col = ColumnVector::ForLeaf(leaf);
    for (size_t r = 0; r < rows; ++r) {
      col.AppendInt(rng.UniformRange(0, 10000));
    }
    cols.push_back(std::move(col));
  }
  return cols;
}

TEST(ParquetLike, WriteReadRoundTrip) {
  Schema schema = SimpleSchema(8);
  std::vector<ColumnVector> data = SimpleData(schema, 1000, 1);
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("p");
    ParquetLikeWriter writer(schema, f->get(), {});
    ASSERT_TRUE(writer.WriteRowGroup(data).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = ParquetLikeReader::Open(*fs.NewReadableFile("p"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->num_rows(), 1000u);
  for (uint32_t c = 0; c < 8; ++c) {
    ColumnVector col;
    ASSERT_TRUE((*reader)->ReadColumnChunk(0, c, &col).ok());
    EXPECT_EQ(col, data[c]);
  }
  EXPECT_EQ(*(*reader)->FindColumn("col_3"), 3u);
  EXPECT_FALSE((*reader)->FindColumn("nope").ok());
}

TEST(ParquetLike, DeleteByRewrite) {
  Schema schema = SimpleSchema(4);
  std::vector<ColumnVector> data = SimpleData(schema, 2000, 2);
  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("p");
    ParquetLikeWriter writer(schema, f->get(), {});
    ASSERT_TRUE(writer.WriteRowGroup(data).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = *ParquetLikeReader::Open(*fs.NewReadableFile("p"));
  std::vector<uint64_t> doomed = {0, 10, 1999};
  auto dest = fs.NewWritableFile("p2");
  auto report =
      reader->DeleteRowsByRewrite(doomed, dest->get(), {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_deleted, 3u);
  // Full-rewrite cost: bytes written ~= original file size.
  uint64_t orig = *fs.FileSize("p");
  EXPECT_GT(report->bytes_written, orig / 2);

  auto reader2 = *ParquetLikeReader::Open(*fs.NewReadableFile("p2"));
  EXPECT_EQ(reader2->num_rows(), 1997u);
  ColumnVector col;
  ASSERT_TRUE(reader2->ReadColumnChunk(0, 0, &col).ok());
  EXPECT_EQ(col.int_values()[0], data[0].int_values()[1]);  // row 0 gone
}

TEST(ParquetLike, OpenCostScalesWithColumns) {
  // The structural property Fig. 5 measures: open (full metadata
  // parse) grows with column count even when reading one column.
  InMemoryFileSystem fs;
  for (size_t cols : {20u, 200u}) {
    Schema schema = SimpleSchema(cols);
    std::vector<ColumnVector> data = SimpleData(schema, 10, 3);
    auto f = fs.NewWritableFile("p" + std::to_string(cols));
    ParquetLikeWriter writer(schema, f->get(), {});
    ASSERT_TRUE(writer.WriteRowGroup(data).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  fs.ResetStats();
  auto r20 = *ParquetLikeReader::Open(*fs.NewReadableFile("p20"));
  uint64_t bytes20 = fs.stats().bytes_read;
  fs.ResetStats();
  auto r200 = *ParquetLikeReader::Open(*fs.NewReadableFile("p200"));
  uint64_t bytes200 = fs.stats().bytes_read;
  EXPECT_GT(bytes200, bytes20 * 5)
      << "metadata read volume must scale with total columns";
}

}  // namespace
}  // namespace baseline
}  // namespace bullion

// Footer validation tests: the zero-copy FooterView must reject
// corrupted headers/sections at Parse time rather than reading out of
// bounds later.

#include <gtest/gtest.h>

#include "format/footer.h"
#include "format/merkle.h"
#include "format/schema.h"

namespace bullion {
namespace {

Buffer BuildValidFooter(uint32_t cols, uint32_t groups, uint32_t pages_per) {
  std::vector<Field> fields;
  for (uint32_t c = 0; c < cols; ++c) {
    fields.push_back({"c" + std::to_string(c),
                      DataType::Primitive(PhysicalType::kInt64),
                      LogicalType::kPlain, false});
  }
  Schema schema(fields);
  FooterBuilder fb(schema, /*rows_per_page=*/100, ComplianceLevel::kLevel1);
  uint64_t offset = 0;
  for (uint32_t g = 0; g < groups; ++g) {
    fb.BeginRowGroup(100 * pages_per);
    for (uint32_t c = 0; c < cols; ++c) {
      uint32_t first = 0;
      for (uint32_t p = 0; p < pages_per; ++p) {
        uint32_t idx = fb.AddPage(offset, 100, 0, 0xAB + p);
        if (p == 0) first = idx;
        offset += 1000;
      }
      fb.SetChunk(g, c, offset - 1000ull * pages_per, first);
    }
  }
  return *fb.Finish(offset, 100ull * pages_per * groups);
}

TEST(FooterParse, ValidFooterAccepted) {
  Buffer footer = BuildValidFooter(5, 3, 2);
  auto view = FooterView::Parse(footer.AsSlice(), 0);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->num_columns(), 5u);
  EXPECT_EQ(view->num_row_groups(), 3u);
  EXPECT_EQ(view->total_pages(), 30u);
  EXPECT_EQ(view->group_row_count(1), 200u);
  auto [b, e] = view->chunk_pages(2, 4);
  EXPECT_EQ(e - b, 2u);
  EXPECT_EQ(view->page_slot_size(0), 1000u);
}

TEST(FooterParse, TooSmallRejected) {
  std::vector<uint8_t> tiny(16, 0);
  EXPECT_FALSE(FooterView::Parse(Slice(tiny.data(), tiny.size()), 0).ok());
}

TEST(FooterParse, ImplausibleCountsRejected) {
  Buffer footer = BuildValidFooter(3, 1, 1);
  // num_columns lives at byte offset 4 in the header.
  std::vector<uint8_t> evil(footer.data(), footer.data() + footer.size());
  uint32_t huge = 0x7FFFFFFF;
  std::memcpy(evil.data() + 4, &huge, 4);
  EXPECT_FALSE(FooterView::Parse(Slice(evil.data(), evil.size()), 0).ok());
}

TEST(FooterParse, TruncatedSectionsRejected) {
  Buffer footer = BuildValidFooter(4, 2, 2);
  for (size_t keep = 40; keep < footer.size(); keep += 16) {
    auto view = FooterView::Parse(footer.AsSlice().SubSlice(0, keep), 0);
    EXPECT_FALSE(view.ok()) << "accepted a footer truncated to " << keep;
  }
}

TEST(FooterParse, WrongVersionRejected) {
  Buffer footer = BuildValidFooter(2, 1, 1);
  std::vector<uint8_t> evil(footer.data(), footer.data() + footer.size());
  evil[0] = 99;
  EXPECT_FALSE(FooterView::Parse(Slice(evil.data(), evil.size()), 0).ok());
}

TEST(Trailer, RoundTripAndRejects) {
  BufferBuilder b;
  b.Append<uint32_t>(1234);        // footer size
  b.Append<uint32_t>(kFooterMagic);
  Buffer t = b.Finish();
  auto loc = ReadTrailer(t.AsSlice(), /*file_size=*/10000);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->first, 10000u - 8 - 1234);
  EXPECT_EQ(loc->second, 1234u);

  // Bad magic.
  BufferBuilder bad;
  bad.Append<uint32_t>(1234);
  bad.Append<uint32_t>(0xDEADBEEF);
  Buffer tb = bad.Finish();
  EXPECT_FALSE(ReadTrailer(tb.AsSlice(), 10000).ok());

  // Footer larger than file.
  EXPECT_FALSE(ReadTrailer(t.AsSlice(), 100).ok());
}

TEST(FooterParse, DeletionVectorSlotsZeroed) {
  Buffer footer = BuildValidFooter(2, 2, 1);
  auto view = *FooterView::Parse(footer.AsSlice(), 0);
  for (uint32_t g = 0; g < 2; ++g) {
    EXPECT_EQ(view.DeletedCount(g), 0u);
    Slice dv = view.deletion_vector(g);
    EXPECT_EQ(dv.size(), (view.group_row_count(g) + 7) / 8);
  }
}

TEST(FooterParse, MerkleSectionsConsistent) {
  Buffer footer = BuildValidFooter(3, 2, 2);
  auto view = *FooterView::Parse(footer.AsSlice(), 0);
  // Rebuild the tree from leaves; interior nodes must match.
  std::vector<uint64_t> hashes(view.total_pages());
  for (uint32_t p = 0; p < view.total_pages(); ++p) {
    hashes[p] = view.page_hash(p);
  }
  std::vector<uint32_t> ppg(view.num_row_groups());
  for (uint32_t g = 0; g < view.num_row_groups(); ++g) {
    auto [b, e] = view.group_page_range(g);
    ppg[g] = e - b;
  }
  MerkleTree tree(hashes, ppg);
  for (uint32_t g = 0; g < view.num_row_groups(); ++g) {
    EXPECT_EQ(tree.group_hash(g), view.group_hash(g));
  }
  EXPECT_EQ(tree.root(), view.root_hash());
}

}  // namespace
}  // namespace bullion

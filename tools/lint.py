#!/usr/bin/env python3
"""Project-invariant linter for the bullion tree.

Dependency-free (stdlib only) so it runs anywhere a python3 exists:
locally via `cmake --build build --target lint`, in CI, and inside
tests/lint_test against fixture trees.

Rules (each has a stable id, printed in brackets):

  metric-name     Metric names passed to MetricsRegistry::Get{Counter,
                  Gauge,Histogram} must match `bullion.<area>.<name>`
                  (lowercase, digits, underscores; dots separate
                  segments).
  metric-docs     Every registered metric name must appear verbatim in
                  src/obs/README.md — the metric table is the public
                  contract, not the source code.
  env-var-docs    Every BULLION_* environment variable read via getenv
                  must be documented in some Markdown file in the tree.
  raw-mutex       No std::mutex / std::condition_variable members
                  outside src/common/mutex.h: the annotated wrappers
                  (Mutex, MutexLock, CondVar) are what Clang's thread
                  safety analysis can see.
  mutex-unannotated
                  A file that declares a Mutex member must carry at
                  least one GUARDED_BY / REQUIRES annotation — a bare
                  mutex with nothing annotated against it defeats the
                  analysis.
  raw-new         Naked `new` is banned unless the result lands in a
                  smart pointer on the same or previous line, or the
                  line carries `lint:allow(raw-new)` (intentional
                  immortal singletons, ring-owned ops). malloc /
                  posix_memalign / free are whitelisted only in
                  src/io/aio.cc (the aligned Block arena).
  include-guard   Every header under src/ must start with #pragma once.
  bare-nolint     NOLINT must name its category: `// NOLINT(...)`.

Output format: `path:line: [rule-id] message`, one violation per line;
exit status 1 if anything fired, 0 on a clean tree.

Usage: lint.py [--root DIR]   (default: the repo containing this file)
"""

import argparse
import os
import re
import sys

METRIC_GETTER_RE = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"')
METRIC_NAME_RE = re.compile(r'^bullion\.[a-z0-9_]+\.[a-z0-9_]+(?:\.[a-z0-9_]+)*$')
GETENV_RE = re.compile(r'getenv\s*\(\s*"(BULLION_[A-Z0-9_]+)"')
STD_MUTEX_RE = re.compile(
    r'\bstd::(mutex|shared_mutex|recursive_mutex|condition_variable(?:_any)?)\b')
MUTEX_MEMBER_RE = re.compile(r'^\s*(?:mutable\s+)?Mutex\s+\w+\s*;')
ANNOTATION_RE = re.compile(r'\b(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES)\s*\(')
NEW_EXPR_RE = re.compile(r'(?<![\w.])new\s+[A-Za-z_:<]')
SMART_WRAP_RE = re.compile(
    r'std::(?:unique_ptr|shared_ptr)\s*<|\bmake_unique\b|\bmake_shared\b|'
    r'\.reset\s*\(|\breset\s*\(\s*new\b|WrapUnique|\bstd::nothrow\b')
RAW_ALLOC_RE = re.compile(r'\b(malloc|calloc|realloc|posix_memalign|free)\s*\(')
NOLINT_RE = re.compile(r'//\s*NOLINT(?!NEXTLINE)(\(|\b)')

RAW_ALLOC_WHITELIST = {os.path.join('src', 'io', 'aio.cc')}
ALLOW_RAW_NEW = 'lint:allow(raw-new)'


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, path, line, rule, message):
        rel = os.path.relpath(path, self.root)
        self.violations.append((rel, line, rule, message))

    # ---------------------------------------------------------------- files
    def source_files(self):
        src = os.path.join(self.root, 'src')
        for dirpath, dirnames, filenames in os.walk(src):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(('.h', '.cc')):
                    yield os.path.join(dirpath, name)

    def markdown_corpus(self):
        """Concatenated text of every .md in the tree (skipping build dirs
        and the lint fixtures, which deliberately leave things undocumented)."""
        chunks = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(('build', '.git')) and d != 'lint_fixtures')
            for name in sorted(filenames):
                if name.endswith('.md'):
                    try:
                        with open(os.path.join(dirpath, name),
                                  encoding='utf-8', errors='replace') as f:
                            chunks.append(f.read())
                    except OSError:
                        pass
        return '\n'.join(chunks)

    # ---------------------------------------------------------------- rules
    def check_file(self, path, metric_docs, md_corpus):
        rel = os.path.relpath(path, self.root)
        try:
            with open(path, encoding='utf-8', errors='replace') as f:
                text = f.read()
        except OSError as e:
            self.report(path, 0, 'io-error', str(e))
            return
        lines = text.splitlines()

        # include-guard: headers must use #pragma once.
        if path.endswith('.h') and '#pragma once' not in text:
            self.report(path, 1, 'include-guard',
                        'header is missing `#pragma once`')

        # metric-name / metric-docs. The getter call and its string
        # literal may be split across lines, so match on the whole text
        # and recover the line number from the match offset.
        for m in METRIC_GETTER_RE.finditer(text):
            name = m.group(1)
            line = text.count('\n', 0, m.start()) + 1
            if not METRIC_NAME_RE.match(name):
                self.report(path, line, 'metric-name',
                            f'metric "{name}" does not match '
                            'bullion.<area>.<name> (lowercase/digits/_)')
            elif metric_docs is not None and name not in metric_docs:
                self.report(path, line, 'metric-docs',
                            f'metric "{name}" is not documented in '
                            'src/obs/README.md')

        # env-var-docs.
        for m in GETENV_RE.finditer(text):
            var = m.group(1)
            line = text.count('\n', 0, m.start()) + 1
            if var not in md_corpus:
                self.report(path, line, 'env-var-docs',
                            f'environment variable {var} is read here but '
                            'documented in no .md file')

        in_mutex_header = rel == os.path.join('src', 'common', 'mutex.h')
        declares_mutex_member = False
        has_annotation = ANNOTATION_RE.search(text) is not None

        for i, raw in enumerate(lines, start=1):
            code = raw.split('//', 1)[0]
            comment = raw[len(code):]

            # raw-mutex.
            if not in_mutex_header and STD_MUTEX_RE.search(code):
                self.report(path, i, 'raw-mutex',
                            'use bullion::Mutex / CondVar from '
                            'common/mutex.h, not std:: primitives '
                            '(thread-safety analysis cannot see these)')

            if MUTEX_MEMBER_RE.match(code):
                declares_mutex_member = True

            # raw-new.
            if NEW_EXPR_RE.search(code) and ALLOW_RAW_NEW not in raw:
                prev = lines[i - 2] if i >= 2 else ''
                if not (SMART_WRAP_RE.search(code)
                        or SMART_WRAP_RE.search(prev)):
                    self.report(path, i, 'raw-new',
                                'naked `new` — own it with a smart pointer '
                                f'or mark `// {ALLOW_RAW_NEW}` with a reason')

            # raw-alloc (C allocator family).
            if rel not in RAW_ALLOC_WHITELIST:
                m = RAW_ALLOC_RE.search(code)
                if m and ALLOW_RAW_NEW not in raw:
                    self.report(path, i, 'raw-new',
                                f'{m.group(1)}() outside the aligned-buffer '
                                'whitelist (src/io/aio.cc)')

            # bare-nolint.
            m = NOLINT_RE.search(comment)
            if m and m.group(1) != '(':
                self.report(path, i, 'bare-nolint',
                            'NOLINT without a category — write '
                            'NOLINT(<check-name>)')

        if declares_mutex_member and not has_annotation:
            self.report(path, 1, 'mutex-unannotated',
                        'file declares a Mutex member but has no '
                        'GUARDED_BY/REQUIRES annotations')

    # ----------------------------------------------------------------- run
    def run(self):
        readme = os.path.join(self.root, 'src', 'obs', 'README.md')
        metric_docs = None
        if os.path.exists(readme):
            with open(readme, encoding='utf-8', errors='replace') as f:
                metric_docs = f.read()
        elif os.path.isdir(os.path.join(self.root, 'src')):
            # No metric table at all: every registered metric is
            # undocumented by definition.
            metric_docs = ''
        md_corpus = self.markdown_corpus()
        for path in self.source_files():
            self.check_file(path, metric_docs, md_corpus)
        for rel, line, rule, message in self.violations:
            print(f'{rel}:{line}: [{rule}] {message}')
        if self.violations:
            print(f'lint: {len(self.violations)} violation(s)',
                  file=sys.stderr)
            return 1
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument('--root', default=default_root,
                        help='tree to lint (default: this repo)')
    args = parser.parse_args()
    return Linter(os.path.abspath(args.root)).run()


if __name__ == '__main__':
    sys.exit(main())

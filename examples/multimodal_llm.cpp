// Multimodal LLM pre-training data layout (§2.5, Fig. 7): meta table in
// Bullion (captions, quality scores, embedded low-res frame highlights,
// media locators) + media table in the Avro-like row format. Runs a
// quality-filtered training scan with and without quality sorting.
//
//   ./build/examples/multimodal_llm

#include <cstdio>

#include "core/bullion.h"

using namespace bullion;              // NOLINT(google-build-using-namespace)
using namespace bullion::multimodal;  // NOLINT(google-build-using-namespace)

namespace {

std::string PseudoMedia(Random* rng, size_t len) {
  std::string s(len, 0);
  for (auto& ch : s) ch = static_cast<char>(rng->Uniform(256));
  return s;
}

std::vector<Sample> CrawlBatch(size_t n) {
  Random rng(777);
  std::vector<Sample> samples(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i].sample_id = static_cast<int64_t>(i);
    // Quality scores from an upstream scoring model.
    samples[i].quality = rng.NextDouble();
    samples[i].caption = PseudoMedia(&rng, 60);
    // Three key frames at reduced resolution, inlined in the meta table.
    for (int k = 0; k < 3; ++k) {
      samples[i].frame_highlights.push_back(PseudoMedia(&rng, 384));
    }
    // The full-size video chunk lives in the media table.
    samples[i].media_blob = PseudoMedia(&rng, 4096);
  }
  return samples;
}

uint64_t RunScan(const std::vector<Sample>& samples, bool sorted) {
  InMemoryFileSystem fs;
  {
    auto meta = fs.NewWritableFile("meta.bullion");
    auto media = fs.NewWritableFile("media.avro");
    DatasetWriterOptions opts;
    opts.quality_sorted = sorted;
    opts.rows_per_group = 1024;
    DatasetWriter writer(meta->get(), media->get(), opts);
    BULLION_CHECK_OK(writer.Write(samples));
  }
  auto reader = *TrainingReader::Open(*fs.NewReadableFile("meta.bullion"),
                                      *fs.NewReadableFile("media.avro"));
  fs.ResetStats();
  // Train on the top-20% quality samples; 2% of them need the
  // full-size media (Fig. 7: "only rare cases").
  auto stats = reader->Scan(/*min_quality=*/0.8, /*full_media_fraction=*/0.02);
  BULLION_CHECK_OK(stats.status());
  std::printf(
      "  %-9s selected %llu/%llu samples, %llu full-media lookups, "
      "%.2f MB consumed, %.2f MB read, %llu I/Os, %llu seeks\n",
      sorted ? "sorted:" : "unsorted:",
      static_cast<unsigned long long>(stats->samples_selected),
      static_cast<unsigned long long>(stats->samples_scanned),
      static_cast<unsigned long long>(stats->full_media_lookups),
      stats->frame_bytes_read / 1048576.0,
      fs.stats().bytes_read / 1048576.0,
      static_cast<unsigned long long>(fs.stats().read_ops),
      static_cast<unsigned long long>(fs.stats().seeks));
  return fs.stats().bytes_read;
}

}  // namespace

int main() {
  std::printf("multimodal pre-training scan (top-20%% quality):\n");
  std::vector<Sample> samples = CrawlBatch(8192);
  uint64_t sorted_bytes = RunScan(samples, true);
  uint64_t unsorted_bytes = RunScan(samples, false);
  std::printf(
      "quality-aware layout reads %.1f%% of the unsorted layout's bytes\n",
      100.0 * sorted_bytes / unsorted_bytes);
  return sorted_bytes < unsorted_bytes ? 0 : 1;
}

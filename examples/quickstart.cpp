// Quickstart: define a schema, write a Bullion file to disk, stream a
// filtered projection back through the unified bullion::Scan front
// door (filter → stream → batch loop, with zone-map pruning skipping
// row groups before any pread), shard the same table across multiple
// files and stream THAT through the identical API, re-scan warm
// through the decoded-chunk cache, append to the live dataset,
// tombstone + compact a shard (with GC and cache invalidation), and
// delete a user's rows in place.
//
// The legacy materializing front doors (ScanBuilder /
// DatasetScanBuilder) are thin wrappers that drain the same stream —
// equivalent output, just fully buffered; both appear below.
//
//   ./build/quickstart [/tmp/quickstart.bullion]

#include <cstdio>
#include <string>

#include "core/bullion.h"

using namespace bullion;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/quickstart.bullion";

  // Every pipeline stage below carries trace spans (src/obs/README.md):
  //   BULLION_TRACE=/tmp/trace.json ./build/quickstart
  // writes a Chrome-trace JSON at exit — open it in ui.perfetto.dev.
  if (obs::TracingEnabled()) {
    std::printf("tracing active (BULLION_TRACE): spans will be written "
                "at exit\n");
  }

  // 1. Schema: a scalar id, a float score, and a sparse id sequence.
  //    Marking "uid" deletable opts it into in-place erasure (§2.1).
  Schema schema({
      Field{"uid", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, /*deletable=*/true},
      Field{"score", DataType::Primitive(PhysicalType::kFloat64),
            LogicalType::kPlain, false},
      Field{"clk_seq", DataType::List(DataType::Primitive(PhysicalType::kInt64)),
            LogicalType::kIdSequence, false},
  });

  // 2. Build one row group of columnar data.
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  std::vector<int64_t> window = {92, 82, 66, 18, 67};
  for (int64_t r = 0; r < 10000; ++r) {
    cols[0].AppendInt(r / 4);                 // uid: 4 events per user
    cols[1].AppendReal(0.001 * (r % 997));    // score
    if (r % 3 == 0) {                         // sliding window drift
      window.insert(window.begin(), 100 + r);
      window.pop_back();
    }
    cols[2].AppendIntList(window);
  }

  // 3. Write — four row groups, so the footer records four sets of
  //    per-chunk zone maps for the filtered scan below to prune with.
  {
    auto file = OpenPosixWritableFile(path, /*truncate=*/true);
    if (!file.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   file.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<ColumnVector>> groups;
    for (size_t begin = 0; begin < 10000; begin += 2500) {
      std::vector<ColumnVector> g;
      for (const LeafColumn& leaf : schema.leaves()) {
        g.push_back(ColumnVector::ForLeaf(leaf));
      }
      for (size_t r = begin; r < begin + 2500; ++r) {
        for (size_t c = 0; c < g.size(); ++c) {
          g[c].AppendRowFrom(cols[c], static_cast<int64_t>(r));
        }
      }
      groups.push_back(std::move(g));
    }
    WriterOptions options;
    options.rows_per_page = 1024;
    Status st = WriteTableFile(file->get(), schema, groups, options);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", path.c_str());

  // 4. Open (two preads: trailer + flat footer) and STREAM a filtered
  //    projection through the unified front door: filter → stream →
  //    batch loop. The writer recorded per-chunk min/max zone maps in
  //    the footer, so row groups the filter provably misses are pruned
  //    before a single pread; surviving groups decode across two
  //    worker threads and arrive as bounded RowBatches — a terabyte
  //    table streams through the same fixed memory footprint.
  auto reader = TableReader::Open(*OpenPosixReadableFile(path));
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("rows=%llu columns=%u groups=%u\n",
              static_cast<unsigned long long>((*reader)->num_rows()),
              (*reader)->num_columns(), (*reader)->num_row_groups());

  {
    IoStats scan_stats;
    auto stream = Scan(reader->get())
                      .Columns({"uid", "score"})
                      .Filter("uid", CompareOp::kGe, 2000)  // skips groups
                      .Threads(2)
                      .BatchRows(1024)  // bounded memory
                      .Stats(&scan_stats)
                      .Stream();
    if (!stream.ok()) {
      std::fprintf(stderr, "stream failed: %s\n",
                   stream.status().ToString().c_str());
      return 1;
    }
    uint64_t rows = 0, batches = 0;
    RowBatch batch;
    for (;;) {
      auto more = (*stream)->Next(&batch);
      if (!more.ok()) {
        std::fprintf(stderr, "stream failed: %s\n",
                     more.status().ToString().c_str());
        return 1;
      }
      if (!*more) break;
      rows += batch.num_rows();  // train / aggregate here, batch by batch
      ++batches;
    }
    std::printf(
        "streamed uid >= 2000: %llu rows in %llu bounded batches, "
        "%llu row groups pruned by zone maps before any pread\n",
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(batches),
        static_cast<unsigned long long>(scan_stats.groups_pruned.load()));
  }

  // 4b. The legacy materializing scan is a wrapper that drains the same
  //     stream (no filters, one batch per row group) — equivalent
  //     output, fully buffered.
  auto scan = ScanBuilder(reader->get())
                  .Columns({"score", "clk_seq"})
                  .Threads(2)
                  .PrefetchDepth(2)
                  .Scan();
  if (!scan.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 scan.status().ToString().c_str());
    return 1;
  }
  auto seq = scan->ConcatColumn(1);
  std::printf("scanned %llu rows across %zu groups; clk_seq row 0: [",
              static_cast<unsigned long long>(scan->num_rows()),
              scan->num_groups());
  for (int64_t v : seq->IntListAt(0)) std::printf(" %lld", (long long)v);
  std::printf(" ]\n");

  // 5. Sharded dataset: production tables span many files. Split the
  //    same stream into shards with a MULTI-THREADED write — the row
  //    groups of all shards encode concurrently on one pool, commits
  //    land in order, and the shard files are byte-identical to a
  //    serial write. Then scan them as ONE logical table — all shards
  //    fan through one pool, and a DecodedChunkCache makes the second
  //    (warm) epoch skip fetch + decode entirely.
  {
    auto sharded_w = ShardedWriteBuilder(schema,
                                         [](const std::string& name) {
                                           return OpenPosixWritableFile(
                                               name, /*truncate=*/true);
                                         })
                         .BaseName(path)
                         .RowsPerShard(4096)  // -> 3 shards for 10k rows
                         .RowsPerGroup(2048)
                         .RowsPerPage(1024)
                         .Threads(2)  // parallel page encoding
                         .Build();
    if (!sharded_w.ok()) {
      std::fprintf(stderr, "shard writer failed: %s\n",
                   sharded_w.status().ToString().c_str());
      return 1;
    }
    Status st = (*sharded_w)->Append(cols);
    if (!st.ok()) {
      std::fprintf(stderr, "shard append failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    {
      auto manifest = (*sharded_w)->Finish();
      if (!manifest.ok()) {
        std::fprintf(stderr, "shard write failed: %s\n",
                     manifest.status().ToString().c_str());
        return 1;
      }
      auto ds = ShardedTableReader::Open(
          *manifest,
          [](const std::string& name) { return OpenPosixReadableFile(name); });
      if (!ds.ok()) {
        std::fprintf(stderr, "dataset open failed: %s\n",
                     ds.status().ToString().c_str());
        return 1;
      }
      DecodedChunkCache cache(64 << 20);
      auto epoch = [&] {
        return DatasetScanBuilder(ds->get())
            .Columns({"score", "clk_seq"})
            .Threads(2)
            .Cache(&cache)
            .Scan();
      };
      auto cold = epoch();  // fills the cache
      uint64_t cold_hits = cache.hits(), cold_misses = cache.misses();
      auto warm = epoch();  // every chunk served decoded from the LRU
      if (!cold.ok() || !warm.ok()) {
        std::fprintf(stderr, "dataset scan failed\n");
        return 1;
      }
      // Counters accumulate across epochs; report the warm delta only.
      uint64_t warm_hits = cache.hits() - cold_hits;
      uint64_t warm_probes = warm_hits + cache.misses() - cold_misses;
      std::printf(
          "sharded: %zu shards, %llu rows; warm epoch re-scan hit cache "
          "%llu/%llu probes (identical output: %s)\n",
          manifest->num_shards(),
          static_cast<unsigned long long>((*ds)->num_rows()),
          static_cast<unsigned long long>(warm_hits),
          static_cast<unsigned long long>(warm_probes),
          warm->groups == cold->groups ? "yes" : "NO");

      // 5a. The SAME streaming front door works over the dataset: the
      //     manifest's aggregated zone maps prune whole shards before
      //     they are touched, and surviving groups stream through the
      //     shared cache.
      {
        IoStats scan_stats;
        auto stream = Scan(ds->get())
                          .Columns({"uid", "score"})
                          .Filter("uid", CompareOp::kLt, 1000)
                          .Threads(2)
                          .Cache(&cache)
                          .Stats(&scan_stats)
                          .Stream();
        if (!stream.ok()) {
          std::fprintf(stderr, "dataset stream failed: %s\n",
                       stream.status().ToString().c_str());
          return 1;
        }
        uint64_t rows = 0;
        RowBatch batch;
        for (;;) {
          auto more = (*stream)->Next(&batch);
          if (!more.ok()) {
            std::fprintf(stderr, "dataset stream failed: %s\n",
                         more.status().ToString().c_str());
            return 1;
          }
          if (!*more) break;
          rows += batch.num_rows();
        }
        std::printf(
            "streamed dataset uid < 1000: %llu rows, %llu shard(s) + "
            "%llu group(s) pruned before any pread\n",
            static_cast<unsigned long long>(rows),
            static_cast<unsigned long long>(scan_stats.shards_pruned.load()),
            static_cast<unsigned long long>(scan_stats.groups_pruned.load()));
      }

      // 5a'. Point lookups through the serving tier: the writer
      //      recorded per-chunk Bloom filters (footer v3) and
      //      per-shard aggregates (manifest v4) by default, so
      //      bullion::Lookup answers "uid == K?" by probing filters
      //      before any pread and then late-materializes only the page
      //      runs holding surviving rows. Compare bytes fetched with
      //      the equivalent filtered scan — same rows, less I/O.
      {
        obs::PipelineReport lookup_report;
        auto hit = Lookup(ds->get())
                       .Key("uid", int64_t{777})
                       .Columns({"uid", "score", "clk_seq"})
                       .Report(&lookup_report)
                       .Run();
        if (!hit.ok()) {
          std::fprintf(stderr, "lookup failed: %s\n",
                       hit.status().ToString().c_str());
          return 1;
        }
        obs::PipelineReport scan_report;
        auto stream = Scan(ds->get())
                          .Columns({"uid", "score", "clk_seq"})
                          .Filter("uid", CompareOp::kEq, 777)
                          .Report(&scan_report)
                          .Stream();
        if (!stream.ok()) {
          std::fprintf(stderr, "scan failed: %s\n",
                       stream.status().ToString().c_str());
          return 1;
        }
        uint64_t scan_rows = 0;
        RowBatch batch;
        for (;;) {
          auto more = (*stream)->Next(&batch);
          if (!more.ok()) return 1;
          if (!*more) break;
          scan_rows += batch.num_rows();
        }
        obs::PipelineReport miss_report;
        auto miss = Lookup(ds->get())
                        .Key("uid", int64_t{424242})
                        .Report(&miss_report)
                        .Run();
        if (!miss.ok() || miss->num_rows() != 0) {
          std::fprintf(stderr, "miss lookup failed\n");
          return 1;
        }
        std::printf(
            "point lookup uid==777: %zu rows (scan agrees: %llu), "
            "%llu bytes fetched via late materialization vs %llu for "
            "the filtered scan; absent key fetched %llu bytes\n",
            hit->num_rows(), static_cast<unsigned long long>(scan_rows),
            static_cast<unsigned long long>(lookup_report.bytes.load()),
            static_cast<unsigned long long>(scan_report.bytes.load()),
            static_cast<unsigned long long>(miss_report.bytes.load()));
      }

      // 5b. The dataset is LIVE: append more rows through the same
      //     parallel pipeline. The appender continues the shard
      //     numbering and publishes a v2 manifest with the generation
      //     bumped — only after the new files are durable.
      auto read_fn = [](const std::string& name) {
        return OpenPosixReadableFile(name);
      };
      auto write_fn = [](const std::string& name) {
        return OpenPosixWritableFile(name, /*truncate=*/true);
      };
      auto appender = DatasetAppender::Open(*manifest, schema, read_fn,
                                            write_fn);
      if (!appender.ok() || !(*appender)->Append(cols).ok()) {
        std::fprintf(stderr, "append failed\n");
        return 1;
      }
      auto live = (*appender)->Finish();
      if (!live.ok()) {
        std::fprintf(stderr, "append publish failed: %s\n",
                     live.status().ToString().c_str());
        return 1;
      }
      std::printf("appended: %zu shards, %llu rows (generation %llu)\n",
                  live->num_shards(),
                  static_cast<unsigned long long>(live->total_rows()),
                  static_cast<unsigned long long>(live->generation()));

      // 5c. Tombstone a third of shard 0's rows in place, then let the
      //     compactor reclaim the space: the shard is rewritten without
      //     its deleted rows (encodes fanned across workers), the old
      //     file is GC'd, and the generation bump invalidates any
      //     cached pre-compaction chunks.
      {
        const std::string& victim = live->shard(0).name;
        auto vf = OpenPosixReadableFile(victim);
        auto rf = OpenPosixReadableFile(victim);
        auto uf = OpenPosixWritableFile(victim, /*truncate=*/false);
        if (!vf.ok() || !rf.ok() || !uf.ok()) {
          std::fprintf(stderr, "shard reopen failed\n");
          return 1;
        }
        auto reader = TableReader::Open(std::move(*vf));
        if (!reader.ok()) {
          std::fprintf(stderr, "shard open failed: %s\n",
                       reader.status().ToString().c_str());
          return 1;
        }
        DeleteExecutor del(rf->get(), uf->get(), (*reader)->footer());
        std::vector<uint64_t> doomed;
        for (uint64_t r = 0; r < (*reader)->num_rows(); r += 3) {
          doomed.push_back(r);
        }
        if (!del.DeleteRows(doomed, ComplianceLevel::kLevel2).ok()) {
          std::fprintf(stderr, "shard delete failed\n");
          return 1;
        }
      }
      DatasetCompactor compactor(read_fn, write_fn,
                                 [](const std::string& name) {
                                   return std::remove(name.c_str()) == 0
                                              ? Status::OK()
                                              : Status::IOError(
                                                    "unlink " + name);
                                 });
      DatasetCompactionOptions copts;
      copts.min_deleted_fraction = 0.25;
      copts.threads = 2;
      copts.cache = &cache;  // drop stale decoded chunks eagerly
      auto compacted = compactor.Compact(*live, copts);
      if (!compacted.ok()) {
        std::fprintf(stderr, "compaction failed: %s\n",
                     compacted.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "compacted %zu/%zu shards: %llu rows reclaimed, %llu -> %llu "
          "bytes, %zu file(s) GC'd, %llu cached chunks invalidated "
          "(generation %llu)\n",
          compacted->shards_compacted, compacted->shards_examined,
          static_cast<unsigned long long>(compacted->rows_reclaimed),
          static_cast<unsigned long long>(compacted->bytes_before),
          static_cast<unsigned long long>(compacted->bytes_after),
          compacted->replaced_files.size(),
          static_cast<unsigned long long>(cache.invalidations()),
          static_cast<unsigned long long>(
              compacted->manifest.generation()));
      auto evolved = ShardedTableReader::Open(compacted->manifest, read_fn);
      if (!evolved.ok()) {
        std::fprintf(stderr, "post-compaction open failed: %s\n",
                     evolved.status().ToString().c_str());
        return 1;
      }
      auto rescan = DatasetScanBuilder(evolved->get())
                        .Columns({"score", "clk_seq"})
                        .Threads(2)
                        .Cache(&cache)
                        .Scan();
      if (!rescan.ok()) {
        std::fprintf(stderr, "post-compaction scan failed\n");
        return 1;
      }
      std::printf("post-compaction scan: %llu rows (zero deleted left)\n",
                  static_cast<unsigned long long>(rescan->num_rows()));
    }
  }

  // 6. GDPR-style delete: physically erase user 7's rows (28..31).
  {
    auto rf = OpenPosixReadableFile(path);
    auto uf = OpenPosixWritableFile(path, /*truncate=*/false);
    DeleteExecutor exec(rf->get(), uf->get(), (*reader)->footer());
    std::vector<uint64_t> rows = {28, 29, 30, 31};
    auto report = exec.DeleteRows(rows, ComplianceLevel::kLevel2);
    if (!report.ok()) {
      std::fprintf(stderr, "delete failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "deleted %llu rows in place: %llu pages rewritten, %llu bytes "
        "(file untouched otherwise)\n",
        static_cast<unsigned long long>(report->rows_deleted),
        static_cast<unsigned long long>(report->pages_rewritten),
        static_cast<unsigned long long>(report->total_bytes_written()));
  }

  // 7. Re-open: deleted rows are gone from reads, checksums still hold.
  auto reader2 = TableReader::Open(*OpenPosixReadableFile(path));
  auto uid = ReadFullColumn(reader2->get(), "uid");
  std::printf("rows visible after delete: %zu (was 10000)\n",
              uid->num_rows());
  Status verify = (*reader2)->VerifyChecksums();
  std::printf("checksum verification: %s\n", verify.ToString().c_str());
  return verify.ok() ? 0 : 1;
}

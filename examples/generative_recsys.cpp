// Generative Recommendation storage (§2.2 Challenge): user-centric
// event sequences stored as one training example per user, with point
// lookups for serving and a sequential scan for training.
//
//   ./build/examples/generative_recsys

#include <cstdio>

#include "core/bullion.h"

using namespace bullion;  // NOLINT(google-build-using-namespace)

int main() {
  // Synthesize 20k users with mixed organic + advertising event
  // histories (requests, impressions, conversions), uid-sorted.
  Random rng(31337);
  std::vector<UserHistory> histories(20000);
  size_t total_events = 0;
  for (size_t u = 0; u < histories.size(); ++u) {
    histories[u].uid = static_cast<int64_t>(u * 7 + 3);
    size_t n = 5 + rng.Uniform(120);
    int64_t ts = 1700000000;
    for (size_t e = 0; e < n; ++e) {
      ts += static_cast<int64_t>(1 + rng.Uniform(5000));
      UserEvent ev;
      ev.timestamp = ts;
      double roll = rng.NextDouble();
      ev.kind = roll < 0.6   ? UserEvent::Kind::kOrganic
                : roll < 0.8 ? UserEvent::Kind::kAdRequest
                : roll < 0.97 ? UserEvent::Kind::kAdImpression
                              : UserEvent::Kind::kAdConversion;
      ev.item_id = static_cast<int64_t>(rng.Uniform(500000));
      ev.value = rng.NextDouble();
      histories[u].events.push_back(ev);
    }
    total_events += n;
  }

  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("users.bullion");
    UserEventStoreOptions opts;
    opts.users_per_group = 4096;
    BULLION_CHECK_OK(UserEventStore::Write(f->get(), histories, opts));
  }
  std::printf("stored %zu users / %zu events in %.2f MB (%.2f B/event)\n",
              histories.size(), total_events,
              *fs.FileSize("users.bullion") / 1048576.0,
              static_cast<double>(*fs.FileSize("users.bullion")) /
                  total_events);

  auto store = *UserEventStore::Open(*fs.NewReadableFile("users.bullion"));

  // Serving-style point lookup: one user's full history.
  fs.ResetStats();
  auto h = store->GetUserHistory(histories[12345].uid);
  BULLION_CHECK_OK(h.status());
  std::printf(
      "lookup uid=%lld: %zu events, read %.2f MB (%.1f%% of file) in %llu "
      "I/Os\n",
      static_cast<long long>(h->uid), h->events.size(),
      fs.stats().bytes_read / 1048576.0,
      100.0 * fs.stats().bytes_read / *fs.FileSize("users.bullion"),
      static_cast<unsigned long long>(fs.stats().read_ops));

  // Training-style scan: count conversions following an impression of
  // the same item within one day (a sequence-model label).
  size_t impressions = 0, attributed = 0;
  BULLION_CHECK_OK(store->ScanAll([&](const UserHistory& user) {
    for (size_t i = 0; i < user.events.size(); ++i) {
      if (user.events[i].kind != UserEvent::Kind::kAdImpression) continue;
      ++impressions;
      for (size_t j = i + 1; j < user.events.size(); ++j) {
        if (user.events[j].timestamp - user.events[i].timestamp > 86400) {
          break;
        }
        if (user.events[j].kind == UserEvent::Kind::kAdConversion &&
            user.events[j].item_id == user.events[i].item_id) {
          ++attributed;
          break;
        }
      }
    }
  }));
  std::printf("scan: %zu impressions, %zu attributed conversions (%.3f%%)\n",
              impressions, attributed,
              impressions ? 100.0 * attributed / impressions : 0.0);
  return 0;
}

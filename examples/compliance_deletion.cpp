// Compliance deletion walkthrough (§2.1): write a user-event table at
// compliance level 2, serve a GDPR erasure request for a set of users,
// and show (a) the deleted data is physically gone, (b) the I/O cost
// vs a full-file rewrite, (c) Merkle checksums stay valid.
//
//   ./build/examples/compliance_deletion

#include <cstdio>

#include "baseline/parquet_like.h"
#include "core/bullion.h"

using namespace bullion;  // NOLINT(google-build-using-namespace)

int main() {
  Schema schema({
      Field{"uid", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, /*deletable=*/true},
      Field{"device", DataType::Primitive(PhysicalType::kInt64),
            LogicalType::kPlain, /*deletable=*/true},
      Field{"interests",
            DataType::List(DataType::Primitive(PhysicalType::kInt64)),
            LogicalType::kPlain, /*deletable=*/true},
  });

  constexpr size_t kRows = 50000;
  constexpr size_t kEventsPerUser = 10;
  std::vector<ColumnVector> cols;
  for (const LeafColumn& leaf : schema.leaves()) {
    cols.push_back(ColumnVector::ForLeaf(leaf));
  }
  Random rng(2024);
  for (size_t r = 0; r < kRows; ++r) {
    cols[0].AppendInt(static_cast<int64_t>(r / kEventsPerUser));
    cols[1].AppendInt(rng.UniformRange(0, 5000));
    std::vector<int64_t> interests(4);
    for (auto& x : interests) x = rng.UniformRange(0, 100000);
    cols[2].AppendIntList(interests);
  }

  InMemoryFileSystem fs;
  WriterOptions wopts;
  wopts.rows_per_page = 512;
  wopts.compliance = ComplianceLevel::kLevel2;
  {
    auto f = fs.NewWritableFile("events");
    BULLION_CHECK_OK(WriteTableFile(f->get(), schema, {cols}, wopts));
  }
  uint64_t file_size = *fs.FileSize("events");
  std::printf("events table: %zu rows, %.2f MB, compliance level 2\n", kRows,
              file_size / 1048576.0);

  // GDPR request: users 120..139 opted out -> erase their 200 rows.
  std::vector<uint64_t> doomed;
  for (uint64_t uid = 120; uid < 140; ++uid) {
    for (size_t e = 0; e < kEventsPerUser; ++e) {
      doomed.push_back(uid * kEventsPerUser + e);
    }
  }

  auto reader = *TableReader::Open(*fs.NewReadableFile("events"));
  int64_t victim_device;
  {
    ReadOptions keep;
    keep.filter_deleted = false;
    ColumnVector device;
    BULLION_CHECK_OK(reader->ReadColumnChunk(0, 1, keep, &device));
    victim_device = device.int_values()[1200];  // a doomed row
  }

  fs.ResetStats();
  {
    auto rf = *fs.NewReadableFile("events");
    auto uf = *fs.OpenForUpdate("events");
    DeleteExecutor exec(rf.get(), uf.get(), reader->footer());
    auto report = exec.DeleteRows(doomed, ComplianceLevel::kLevel2);
    BULLION_CHECK_OK(report.status());
    std::printf(
        "erased %llu rows: %llu pages rewritten, %.3f MB written "
        "(%.1fx less than the %.2f MB a full rewrite costs)\n",
        static_cast<unsigned long long>(report->rows_deleted),
        static_cast<unsigned long long>(report->pages_rewritten),
        report->total_bytes_written() / 1048576.0,
        static_cast<double>(file_size) / report->total_bytes_written(),
        file_size / 1048576.0);
  }
  std::printf("file size unchanged: %llu -> %llu bytes\n",
              static_cast<unsigned long long>(file_size),
              static_cast<unsigned long long>(*fs.FileSize("events")));

  // Evidence of physical erasure: read WITHOUT filtering.
  auto reader2 = *TableReader::Open(*fs.NewReadableFile("events"));
  {
    ReadOptions keep;
    keep.filter_deleted = false;
    ColumnVector device;
    BULLION_CHECK_OK(reader2->ReadColumnChunk(0, 1, keep, &device));
    std::printf(
        "doomed row's device id before: %lld, after in-place erase: %lld\n",
        static_cast<long long>(victim_device),
        static_cast<long long>(device.int_values()[1200]));
  }
  // Normal reads skip the erased rows via the deletion vector.
  {
    ReadOptions filter;
    ColumnVector uid;
    BULLION_CHECK_OK(reader2->ReadColumnChunk(0, 0, filter, &uid));
    std::printf("visible rows: %zu (200 erased)\n", uid.num_rows());
  }
  Status verify = reader2->VerifyChecksums();
  std::printf("merkle verification after in-place updates: %s\n",
              verify.ToString().c_str());
  return verify.ok() ? 0 : 1;
}

// Ads training pipeline: generates a wide ads table shaped like the
// paper's Table 1, writes it with sliding-window sparse-feature
// encoding, then runs a training-style loop that projects ~10% of the
// columns in mini-batches — the §2.3 access pattern.
//
//   ./build/examples/ads_training_pipeline [scale] [rows]
//   (scale 0.02 ~= 360 logical columns; default keeps runtime short)

#include <cstdio>
#include <cstdlib>

#include "core/bullion.h"
#include "workload/ads_schema.h"

using namespace bullion;  // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  size_t rows = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 2048;

  Schema schema = workload::BuildAdsSchema(scale);
  std::printf("ads schema: %zu fields -> %zu leaf columns\n",
              schema.num_fields(), schema.num_leaves());

  workload::AdsDataOptions dopts;
  dopts.seq_length = 32;
  std::vector<ColumnVector> data =
      workload::GenerateAdsData(schema, rows, 7, dopts);

  InMemoryFileSystem fs;
  {
    WriterOptions wopts;
    wopts.rows_per_page = 512;
    wopts.enable_sparse_delta = true;  // §2.2 for clk_seq-style columns
    auto f = fs.NewWritableFile("ads");
    Status st = WriteTableFile(f->get(), schema, {data}, wopts);
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  uint64_t file_size = *fs.FileSize("ads");
  std::printf("file: %.2f MB for %zu rows x %zu columns\n",
              file_size / 1048576.0, rows, schema.num_leaves());

  // Training job: project every 10th feature (a ~10% feature
  // projection, as the paper reports for production jobs).
  auto reader = *TableReader::Open(*fs.NewReadableFile("ads"));
  std::vector<uint32_t> projection;
  for (uint32_t c = 0; c < reader->num_columns(); c += 10) {
    projection.push_back(c);
  }

  fs.ResetStats();
  ReadOptions ropts;
  std::vector<ColumnVector> batch;
  Status st = reader->ReadProjection(0, projection, ropts, &batch);
  if (!st.ok()) {
    std::fprintf(stderr, "projection failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // "Train": consume the decoded features (here: checksum them).
  uint64_t consumed_values = 0;
  for (const ColumnVector& col : batch) {
    consumed_values += col.LeafCount();
  }
  IoStats io = fs.stats();
  std::printf(
      "projected %zu/%u columns: %llu values, %.2f MB read in %llu "
      "coalesced I/Os (%.1f%% of file)\n",
      projection.size(), reader->num_columns(),
      static_cast<unsigned long long>(consumed_values),
      io.bytes_read / 1048576.0,
      static_cast<unsigned long long>(io.read_ops),
      100.0 * io.bytes_read / file_size);

  // Feature-reordered layout: co-accessed features placed adjacently
  // (Alpha-style, §3) — fewer, larger coalesced reads.
  {
    std::vector<uint32_t> order;
    for (uint32_t c : projection) order.push_back(c);
    for (uint32_t c = 0; c < schema.num_leaves(); ++c) {
      if (c % 10 != 0) order.push_back(c);
    }
    WriterOptions wopts;
    wopts.rows_per_page = 512;
    wopts.column_order = order;
    auto f = fs.NewWritableFile("ads_reordered");
    BULLION_CHECK_OK(WriteTableFile(f->get(), schema, {data}, wopts));
    auto r2 = *TableReader::Open(*fs.NewReadableFile("ads_reordered"));
    fs.ResetStats();
    std::vector<ColumnVector> batch2;
    BULLION_CHECK_OK(r2->ReadProjection(0, projection, ropts, &batch2));
    std::printf(
        "with feature reordering: %llu I/Os, %llu seeks (vs %llu before)\n",
        static_cast<unsigned long long>(fs.stats().read_ops),
        static_cast<unsigned long long>(fs.stats().seeks),
        static_cast<unsigned long long>(io.read_ops));
  }
  return 0;
}

// Storage quantization pipeline (§2.4): take FP32 embeddings, pick a
// per-feature precision under an error budget, store the quantized bit
// patterns in a Bullion table, and read them back for "serving".
//
//   ./build/examples/quantized_embeddings

#include <cmath>
#include <cstdio>

#include "core/bullion.h"

using namespace bullion;  // NOLINT(google-build-using-namespace)

int main() {
  // Upstream model emits 64-dim FP32 embeddings, normalized to (-1,1).
  constexpr size_t kRowsN = 20000;
  constexpr size_t kDim = 64;
  Random rng(4242);
  std::vector<float> flat(kRowsN * kDim);
  for (auto& x : flat) {
    x = static_cast<float>(std::tanh(rng.NextGaussian() * 0.5));
  }

  // Per-feature precision choice under a relative-L2 budget.
  PrecisionConstraint constraint;
  constraint.max_relative_l2 = 5e-3;
  PrecisionAssignment plan = MixedPrecisionPolicy::Assign(
      std::span<const float>(flat.data(), 4096), constraint);
  std::printf("chosen precision: %s (rel_l2 on sample: %.2e)\n",
              std::string(PrecisionName(plan.precision)).c_str(),
              plan.error.relative_l2);

  // Quantize and store as a Bullion table: embeddings ride the int
  // domain as bit patterns.
  std::vector<int64_t> bits = QuantizeFloats(flat, plan.precision);
  Schema schema({
      Field{"emb", DataType::List(DataType::Primitive(
                       PrecisionPhysicalType(plan.precision))),
            LogicalType::kEmbedding, false},
  });
  std::vector<ColumnVector> cols;
  cols.push_back(ColumnVector::ForLeaf(schema.leaves()[0]));
  for (size_t r = 0; r < kRowsN; ++r) {
    cols[0].AppendIntList(std::vector<int64_t>(
        bits.begin() + static_cast<int64_t>(r * kDim),
        bits.begin() + static_cast<int64_t>((r + 1) * kDim)));
  }

  InMemoryFileSystem fs;
  {
    auto f = fs.NewWritableFile("emb");
    BULLION_CHECK_OK(WriteTableFile(f->get(), schema, {cols}));
  }
  double fp32_mb = flat.size() * 4.0 / 1048576.0;
  double stored_mb = *fs.FileSize("emb") / 1048576.0;
  std::printf("raw FP32: %.2f MB  -> stored (%s + cascade): %.2f MB "
              "(%.2fx saved)\n",
              fp32_mb, std::string(PrecisionName(plan.precision)).c_str(),
              stored_mb, fp32_mb / stored_mb);

  // "Serving": read a row back and dequantize for similarity search.
  auto reader = *TableReader::Open(*fs.NewReadableFile("emb"));
  auto emb_col = ReadFullColumn(reader.get(), "emb");
  std::vector<int64_t> row_bits = emb_col->IntListAt(123);
  std::vector<float> row = DequantizeFloats(row_bits, plan.precision);

  double err = 0;
  for (size_t d = 0; d < kDim; ++d) {
    err += std::abs(row[d] - flat[123 * kDim + d]);
  }
  std::printf("row 123 mean abs dequantization error: %.3e\n", err / kDim);

  // Business-critical path: dual-column split (§2.4 opportunity 3).
  DualColumn dual = SplitDualColumn(
      std::span<const float>(flat.data(), kDim));
  std::vector<float> exact = ReconstructDual(dual);
  double dual_err = 0;
  for (size_t d = 0; d < kDim; ++d) {
    dual_err += std::abs(exact[d] - flat[d]);
  }
  std::printf("dual-column (2xFP16) reconstruction mean abs err: %.3e\n",
              dual_err / kDim);
  return 0;
}
